"""Parallel simulation executor with a persistent on-disk result cache.

Every paper table and figure walks a workload x defense x knob matrix of
*independent*, pure-CPU simulations — exactly the embarrassingly
parallel shape AMuLeT exploits to scale countermeasure testing.  This
module provides the two pieces that make the whole evaluation grid scale
with cores instead of wall-clock:

* a **batch API** (:func:`run_batch`): callers declare their full
  :class:`~repro.bench.runner.RunSpec` matrix up front and the executor
  fans the specs out over a :class:`concurrent.futures.ProcessPoolExecutor`
  with per-spec timeouts, crashed-worker retry/requeue, and a progress
  line;

* a **persistent content-addressed cache** under ``benchmarks/.cache/``
  keyed by the spec plus a version hash of the workload program and the
  simulator-relevant source, storing a slim :class:`RunSummary` (cycles,
  instruction count, defense stats — not the full ``Memory`` image or
  ``timing_trace``) so repeated runs and cross-process workers reuse
  results.

Environment knobs:

* ``REPRO_JOBS`` — default worker count (``--jobs`` overrides; falls
  back to ``os.cpu_count()``).
* ``REPRO_NO_CACHE=1`` — disable the on-disk cache entirely.
* ``REPRO_CACHE_DIR`` — override the cache directory.
* ``REPRO_CACHE_SALT`` — extra content mixed into the version hash
  (used by tests to force invalidation).
* ``REPRO_PROGRESS`` — force the progress line on (``1``) or off
  (``0``); default: only when stderr is a tty.

Parallel output is bit-identical to serial output: a simulation is a
pure function of its spec, and results are keyed (not ordered) by spec.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import logging
import os
import pathlib
import signal
import sys
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..isa.program import Program
from ..metrics.registry import get_registry
from ..metrics.spans import (
    SpanRecorder,
    get_recorder,
    set_recorder,
    span_attrs_for_spec,
)
from ..uarch.pipeline import CoreResult
from ..workloads import get_workload
from .runner import RunSpec, execute_spec

logger = logging.getLogger(__name__)

#: Bumped whenever the cache entry layout changes.  Feeds both the
#: cache *key* (old-format entries are never even looked up) and the
#: ``schema`` field embedded in every payload, which ``RunSummary.
#: from_dict`` checks so a stale payload can never deserialize silently.
#: 2: complete cache/TLB/stall-cause stats schema; step() accounts the
#:    halting cycle (cycle counts shift by one).
#: 3: speculation-observatory schema — transient-uop accounting
#:    (issued_uops, per-cause squash counters), speculation-depth and
#:    squash-cascade histograms, per-hook defense intervention
#:    episode counters; the "defense" stall alias became
#:    "defense_execute".
#: 4: ``RunSpec.mitigation`` (software mitigation passes) joins the
#:    spec cache key; entries written before the field existed would
#:    collide with ``mitigation=None`` under the old asdict payload.
CACHE_FORMAT = 4

#: Default per-spec wall-clock budget (seconds).  Simulations carry a
#: cycle-count safety valve already, so this only catches pathological
#: hangs (infinite loops in new defense code, a wedged worker, ...).
DEFAULT_TIMEOUT_S = 600.0

#: How many times a spec is re-queued after a worker timeout or crash
#: before the batch gives up.
DEFAULT_RETRIES = 2

#: Source packages whose content feeds the version hash.  Editing any
#: of these invalidates every cached result; workload *programs* are
#: hashed separately (per workload) so a new kernel only invalidates
#: itself.
_VERSIONED_PACKAGES = ("arch", "uarch", "isa", "defenses", "protcc",
                       "protisa")


class ExecutorError(RuntimeError):
    """A spec exhausted its retries (worker crash or timeout)."""


@dataclass(frozen=True)
class RunSummary:
    """The slim, picklable outcome of one simulation.

    This is what the persistent cache stores and what the perf paths
    (``norm_runtime``, tables, figures, ablations) consume: cycles,
    instruction count, and the defense/pipeline stats counters — never
    the full ``Memory`` image or ``timing_trace``, which only the
    contracts/fuzzing paths need.
    """

    cycles: int
    instructions: int
    halt_reason: str
    stats: Tuple[Tuple[str, int], ...] = ()

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def stat(self) -> Dict[str, int]:
        return dict(self.stats)

    def to_dict(self) -> Dict:
        return {
            "schema": CACHE_FORMAT,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "halt_reason": self.halt_reason,
            "stats": {k: v for k, v in self.stats},
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunSummary":
        schema = payload.get("schema")
        if schema != CACHE_FORMAT:
            raise ValueError(
                f"stale RunSummary payload: schema {schema!r}, "
                f"expected {CACHE_FORMAT} (re-run to regenerate)")
        return cls(
            cycles=int(payload["cycles"]),
            instructions=int(payload["instructions"]),
            halt_reason=str(payload["halt_reason"]),
            stats=tuple(sorted(payload.get("stats", {}).items())),
        )


def summarize(result: CoreResult) -> RunSummary:
    """Project a full :class:`CoreResult` down to its perf summary."""
    return RunSummary(
        cycles=result.cycles,
        instructions=result.instructions,
        halt_reason=result.halt_reason,
        stats=tuple(sorted(result.stats.items())),
    )


@dataclass
class BatchStats:
    """Accounting for one :func:`run_batch` call."""

    total: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    simulated: int = 0
    retried: int = 0
    jobs: int = 1
    elapsed_s: float = 0.0
    #: Compiled-backend artifact cache traffic during this batch
    #: (parent-process registry deltas: with a worker pool the children
    #: compile in their own processes, so these only count in-process
    #: simulations — which is exactly the serial path).
    compile_hits: int = 0
    compile_misses: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def compile_hit_rate(self) -> float:
        seen = self.compile_hits + self.compile_misses
        return self.compile_hits / seen if seen else 0.0

    def line(self) -> str:
        compile_part = ""
        if self.compile_hits or self.compile_misses:
            compile_part = (f", compile cache {self.compile_hits}/"
                            f"{self.compile_hits + self.compile_misses} hit")
        return (f"[executor] {self.total} specs: {self.hits} cached "
                f"({self.memory_hits} mem, {self.disk_hits} disk, "
                f"{100 * self.hit_rate:.0f}% hit rate), "
                f"{self.simulated} simulated, {self.retried} retried, "
                f"jobs={self.jobs}, {self.elapsed_s:.1f}s{compile_part}")


#: Stats of the most recent batch (tests and the bench script read it).
LAST_BATCH = BatchStats()


# ======================================================================
# Version hashing: spec + workload content + simulator source
# ======================================================================

def _hash(*chunks: bytes) -> str:
    digest = hashlib.sha256()
    for chunk in chunks:
        digest.update(chunk)
        digest.update(b"\x00")
    return digest.hexdigest()


@functools.lru_cache(maxsize=None)
def _source_fingerprint(salt: str) -> str:
    """Hash of every simulator-relevant source file (plus ``salt``)."""
    root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256(salt.encode())
    for package in _VERSIONED_PACKAGES:
        for path in sorted((root / package).glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


def code_version_hash() -> str:
    """The simulator-source component of every cache key."""
    return _source_fingerprint(os.environ.get("REPRO_CACHE_SALT", ""))


def program_fingerprint(program: Program) -> str:
    """Stable content hash of a program (instructions + layout)."""
    lines = []
    for inst in program.instructions:
        lines.append("|".join((
            inst.op.name,
            str(inst.rd), str(inst.ra), str(inst.rb), str(inst.imm),
            str(inst.target),
            inst.cond.name if inst.cond is not None else "None",
            "P" if inst.prot else "-",
        )))
    lines.append(json.dumps(sorted(program.labels.items())))
    lines.append(json.dumps([(f.name, f.start, f.end)
                             for f in program.functions]))
    lines.append(str(program.entry))
    return _hash("\n".join(lines).encode())


@functools.lru_cache(maxsize=None)
def workload_fingerprint(name: str) -> str:
    """Content hash of a workload: program, initial memory, registers."""
    workload = get_workload(name)
    memory = json.dumps(sorted(workload.memory.snapshot().items()))
    regs = json.dumps(sorted(workload.regs.items()))
    classes = json.dumps(workload.classes, sort_keys=True) \
        if isinstance(workload.classes, dict) else str(workload.classes)
    return _hash(program_fingerprint(workload.program).encode(),
                 memory.encode(), regs.encode(), classes.encode())


def spec_cache_key(spec: RunSpec) -> str:
    """Content-addressed cache key for one spec."""
    payload = json.dumps(dataclasses.asdict(spec), sort_keys=True)
    return _hash(f"v{CACHE_FORMAT}".encode(), payload.encode(),
                 workload_fingerprint(spec.workload).encode(),
                 code_version_hash().encode())


# ======================================================================
# Wire formats shared with the campaign fabric
# ======================================================================

def canonical_json(payload) -> str:
    """Byte-deterministic JSON: the fabric's dedup protocol asserts
    byte-equality of duplicate results, so every result must serialize
    to exactly one string."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_to_payload(spec: RunSpec) -> Dict:
    """JSON-safe projection of a spec (the fabric's spool format)."""
    return dataclasses.asdict(spec)


def spec_from_payload(payload: Dict) -> RunSpec:
    """Rebuild a :class:`RunSpec` from :func:`spec_to_payload` output."""
    fields = {f.name for f in dataclasses.fields(RunSpec)}
    unknown = set(payload) - fields
    if unknown:
        raise ValueError(f"unknown RunSpec fields in spool payload: "
                         f"{sorted(unknown)}")
    return RunSpec(**payload)


# ======================================================================
# Persistent on-disk cache
# ======================================================================

def cache_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_CACHE_DIR", "")
    if override:
        return pathlib.Path(override)
    # src/repro/bench/executor.py -> repo root is three parents up from
    # the package directory.
    return (pathlib.Path(__file__).resolve().parents[3]
            / "benchmarks" / ".cache")


def cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") in ("", "0")


def _cache_path(key: str) -> pathlib.Path:
    return cache_dir() / key[:2] / f"{key}.json"


def cache_load(spec: RunSpec) -> Optional[RunSummary]:
    """Look a spec up in the on-disk cache (None on miss/corruption)."""
    if not cache_enabled():
        return None
    path = _cache_path(spec_cache_key(spec))
    try:
        payload = json.loads(path.read_text())
        if payload.get("format") != CACHE_FORMAT:
            return None  # stale entry written under an older layout
        return RunSummary.from_dict(payload["summary"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def cache_store(spec: RunSpec, summary: RunSummary) -> None:
    """Persist one result (atomic write; concurrent writers are safe)."""
    if not cache_enabled():
        return
    path = _cache_path(spec_cache_key(spec))
    payload = {
        "format": CACHE_FORMAT,
        "spec": dataclasses.asdict(spec),
        "summary": summary.to_dict(),
        "created": time.time(),
    }
    tmp = None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except OSError:
        # A read-only cache directory must never fail a run — but a
        # failed dump/replace must not leak its temp file either.
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def wipe_cache() -> int:
    """Delete every cached entry; returns the number removed."""
    removed = 0
    base = cache_dir()
    if not base.exists():
        return 0
    for path in base.rglob("*.json"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def cache_info() -> Dict:
    """Entry count and total size of the on-disk cache.

    Entries that vanish between the directory walk and the ``stat``
    (a concurrent ``wipe_cache`` or writer replacing its temp file)
    are skipped rather than crashing the inspection.
    """
    base = cache_dir()
    entries = 0
    total_bytes = 0
    if base.exists():
        for path in base.rglob("*.json"):
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue  # deleted mid-walk by a concurrent wipe/writer
            entries += 1
    return {
        "dir": str(base),
        "enabled": cache_enabled(),
        "entries": entries,
        "bytes": total_bytes,
    }


# ======================================================================
# Single-spec entry point (in-process)
# ======================================================================

_summary_cache: Dict[RunSpec, RunSummary] = {}


def run_summary(spec: RunSpec) -> RunSummary:
    """Summary of one simulation: memory cache, then disk, then run."""
    cached = _summary_cache.get(spec)
    if cached is not None:
        return cached
    recorder = get_recorder()
    if recorder is None:
        summary = cache_load(spec)
        if summary is None:
            summary = summarize(execute_spec(spec))
            cache_store(spec, summary)
        _summary_cache[spec] = summary
        return summary
    with recorder.span("cache.lookup"):
        summary = cache_load(spec)
    if summary is None:
        with recorder.span("sim", attrs=span_attrs_for_spec(spec)):
            summary = summarize(execute_spec(spec))
        with recorder.span("cache.write"):
            cache_store(spec, summary)
    _summary_cache[spec] = summary
    return summary


def clear_summary_cache() -> None:
    _summary_cache.clear()
    workload_fingerprint.cache_clear()
    _source_fingerprint.cache_clear()


# ======================================================================
# The parallel batch API
# ======================================================================

def resolve_jobs(jobs: Optional[int] = None) -> int:
    """``--jobs`` argument > ``REPRO_JOBS`` env > ``os.cpu_count()``.

    The single warn-and-fallback job resolver shared by the batch
    executor and the fuzzing campaigns: a malformed ``REPRO_JOBS``
    value (``REPRO_JOBS=four``) is warned about and ignored rather
    than crashing the run — the env var is ambient configuration, not
    an argument the caller validated.
    """
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            logger.warning(
                "ignoring malformed REPRO_JOBS=%r (expected an integer); "
                "falling back to cpu count", env)
    return os.cpu_count() or 1


class _WorkerTimeout(Exception):
    pass


def _worker_run(spec: RunSpec, timeout_s: Optional[float],
                trace_ctx: Optional[Dict] = None) -> Tuple:
    """Pool worker: simulate one spec under a wall-clock alarm.

    Returns ``(status, spec, payload, sim_seconds)`` with status one of
    ``"ok"`` (payload: :class:`RunSummary`), ``"timeout"``, or
    ``"error"`` (payload: message).  ``sim_seconds`` is the worker-side
    wall time, so the parent can split queue wait from simulation time
    in its metrics; the parent also accepts legacy 3-tuples from
    test-injected workers.  The worker writes the disk cache itself so
    completed work survives even if the parent dies mid-batch.

    ``trace_ctx`` (a span wire context) is only passed when the parent
    has a span recorder attached: the worker then records its own spans
    under a ``worker.run`` span parented to the submitting side's
    attempt span, and returns them as a fifth tuple element of span
    dicts for the parent to adopt.  Without it the tuple stays 4-wide
    and no tracing machinery runs — the zero-overhead contract.
    """
    recorder = None
    run_span = None
    if trace_ctx is not None:
        recorder = SpanRecorder()
        previous_recorder = set_recorder(recorder)
        run_span = recorder.start(
            "worker.run", attrs={"pid": os.getpid()}, parent=trace_ctx,
            push=True)
    use_alarm = bool(timeout_s) and hasattr(signal, "SIGALRM")
    if use_alarm:
        def _on_alarm(signum, frame):
            raise _WorkerTimeout()
        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    started = time.perf_counter()
    try:
        summary = run_summary(spec)
        status, payload = "ok", summary
    except _WorkerTimeout:
        status, payload = "timeout", None
    except Exception as exc:  # noqa: BLE001 — report, parent decides
        status, payload = "error", f"{type(exc).__name__}: {exc}"
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
    elapsed = time.perf_counter() - started
    if recorder is None:
        return (status, spec, payload, elapsed)
    recorder.finish(run_span, status=status)
    set_recorder(previous_recorder)
    return (status, spec, payload, elapsed, recorder.to_dicts())


def _progress_enabled() -> bool:
    forced = os.environ.get("REPRO_PROGRESS", "")
    if forced:
        return forced != "0"
    return sys.stderr.isatty()


def _progress(stats: BatchStats, done: int, final: bool = False) -> None:
    if not _progress_enabled():
        return
    sys.stderr.write(f"\r[executor] {done}/{stats.total} "
                     f"({stats.hits} cached, {stats.simulated} simulated, "
                     f"{stats.retried} retried) jobs={stats.jobs}")
    if final:
        sys.stderr.write("\n")
    sys.stderr.flush()


def run_batch(
    specs: Iterable[RunSpec],
    jobs: Optional[int] = None,
    timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
    retries: int = DEFAULT_RETRIES,
    worker: Optional[Callable] = None,
    fabric: Optional[str] = None,
) -> Dict[RunSpec, RunSummary]:
    """Resolve a whole spec matrix, fanning misses out over processes.

    Specs already in the in-memory or on-disk cache are never re-run.
    With an effective job count of 1 (or a single pending spec) the
    batch runs serially in-process — parallel and serial paths produce
    bit-identical results because every simulation is a pure function
    of its spec.

    ``worker`` overrides the pool worker function (tests use this to
    exercise the timeout/retry/crash paths).

    ``fabric`` (or the ``REPRO_FABRIC`` environment variable) names a
    campaign-fabric spool directory: pending specs are sharded through
    the broker/worker fabric (see :mod:`repro.bench.fabric`) instead of
    a local process pool, and the merged results are byte-identical to
    the serial path because result identity never depends on where a
    spec ran.
    """
    global LAST_BATCH
    ordered: List[RunSpec] = []
    seen = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            ordered.append(spec)

    stats = BatchStats(total=len(ordered))
    registry = get_registry()
    recorder = get_recorder()
    batch_span = None
    if recorder is not None:
        batch_span = recorder.start(
            "executor.batch", attrs={"specs": len(ordered)}, push=True)
    if registry is not None:
        compile_before = (
            registry.counter("uarch.compile_cache_hits").value
            + registry.counter("uarch.compile_cache_disk_hits").value,
            registry.counter("uarch.compile_cache_misses").value)
    started = time.monotonic()
    results: Dict[RunSpec, RunSummary] = {}
    pending: List[RunSpec] = []
    try:
        for spec in ordered:
            cached = _summary_cache.get(spec)
            if cached is not None:
                results[spec] = cached
                stats.memory_hits += 1
                if recorder is not None:
                    now = recorder.now()
                    recorder.add("spec", now, now, attrs=dict(
                        span_attrs_for_spec(spec), cache="memory"))
                continue
            lookup_started = recorder.now() if recorder is not None \
                else 0.0
            cached = cache_load(spec)
            if cached is not None:
                results[spec] = cached
                _summary_cache[spec] = cached
                stats.disk_hits += 1
                if recorder is not None:
                    recorder.add("spec", lookup_started, recorder.now(),
                                 attrs=dict(span_attrs_for_spec(spec),
                                            cache="disk"))
                continue
            pending.append(spec)

        stats.jobs = resolve_jobs(jobs)
        if fabric is None:
            fabric = os.environ.get("REPRO_FABRIC") or None
        if pending:
            if fabric:
                from .fabric.broker import run_batch_fabric

                run_batch_fabric(pending, fabric, results, stats,
                                 retries=retries, registry=registry)
            elif stats.jobs <= 1 or len(pending) == 1:
                stats.jobs = 1
                for index, spec in enumerate(pending):
                    spec_started = time.perf_counter()
                    if recorder is None:
                        results[spec] = run_summary(spec)
                    else:
                        with recorder.span(
                                "spec", attrs=span_attrs_for_spec(spec)):
                            results[spec] = run_summary(spec)
                    if registry is not None:
                        registry.timer("executor.spec_seconds").observe(
                            time.perf_counter() - spec_started)
                    stats.simulated += 1
                    _progress(stats, len(results))
            else:
                _run_pool(pending, stats, timeout_s, retries,
                          worker or _worker_run, results, registry)
        stats.elapsed_s = time.monotonic() - started
    finally:
        if recorder is not None:
            recorder.finish(batch_span, simulated=stats.simulated,
                            cached=stats.hits, jobs=stats.jobs)
    if registry is not None:
        stats.compile_hits = (
            registry.counter("uarch.compile_cache_hits").value
            + registry.counter("uarch.compile_cache_disk_hits").value
            - compile_before[0])
        stats.compile_misses = (
            registry.counter("uarch.compile_cache_misses").value
            - compile_before[1])
    _progress(stats, len(results), final=True)
    if registry is not None:
        counter = registry.counter
        counter("executor.batches").inc()
        counter("executor.specs").inc(stats.total)
        counter("executor.simulated").inc(stats.simulated)
        counter("executor.retried").inc(stats.retried)
        counter("cache.memory_hits").inc(stats.memory_hits)
        counter("cache.disk_hits").inc(stats.disk_hits)
        counter("cache.misses").inc(stats.simulated)
        registry.timer("executor.batch_seconds").observe(stats.elapsed_s)
    logger.info("%s", stats.line())
    LAST_BATCH = stats
    return results


def _run_pool(pending: List[RunSpec], stats: BatchStats,
              timeout_s: Optional[float], retries: int,
              worker: Callable,
              results: Dict[RunSpec, RunSummary],
              registry=None) -> None:
    """Fan ``pending`` out over a process pool, retrying failures.

    Worker crashes surface as :class:`BrokenProcessPool`; the pool is
    rebuilt and every unfinished spec re-queued (each charged one
    attempt so a reliably crashing spec cannot loop forever).  Every
    (re)submission stamps a fresh ``submitted`` timestamp, so the
    ``executor.queue_wait_seconds`` metric for a completion after a
    pool rebuild measures the wait since the rebuild — not a stale
    epoch from before the crash.

    With a span recorder attached, each spec gets one ``spec`` span for
    its whole pool lifetime and one ``attempt`` span per submission
    (``attempt=N`` attr) parented under it; the worker-side trace
    context handed to ``pool.submit`` is the attempt span's, so retries
    after a crash or timeout stay under the same spec span.  The extra
    ``trace_ctx`` argument is only passed when a recorder is attached,
    so injected test workers with the legacy 2-argument signature keep
    working untraced.
    """
    recorder = get_recorder()
    spec_spans: Dict[RunSpec, object] = {}
    attempt_spans: Dict[RunSpec, object] = {}
    attempts: Dict[RunSpec, int] = {spec: 0 for spec in pending}
    submitted: Dict[RunSpec, float] = {}
    queue = list(pending)
    while queue:
        workers = min(stats.jobs, len(queue))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            try:
                for spec in queue:
                    attempts[spec] += 1
                    if recorder is not None:
                        spec_span = spec_spans.get(spec)
                        if spec_span is None:
                            spec_span = spec_spans[spec] = recorder.start(
                                "spec", attrs=span_attrs_for_spec(spec))
                        attempt_span = recorder.start(
                            "attempt", attrs={"attempt": attempts[spec]},
                            parent=spec_span)
                        attempt_spans[spec] = attempt_span
                        future = pool.submit(worker, spec, timeout_s,
                                             attempt_span.context())
                    else:
                        future = pool.submit(worker, spec, timeout_s)
                    futures[future] = spec
                    submitted[spec] = time.perf_counter()
                queue = []
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                    for future in done:
                        spec = futures[future]
                        outcome = future.result()
                        status, payload = outcome[0], outcome[2]
                        # Injected test workers may return legacy
                        # 3-tuples without the worker-side wall time.
                        sim_s = outcome[3] if len(outcome) > 3 else None
                        if status == "ok":
                            results[spec] = payload
                            _summary_cache[spec] = payload
                            cache_store(spec, payload)
                            stats.simulated += 1
                            if recorder is not None:
                                _finish_pool_spans(
                                    recorder, spec, spec_spans,
                                    attempt_spans,
                                    outcome[4] if len(outcome) > 4
                                    else ())
                            if registry is not None:
                                _observe_pool_spec(registry, sim_s,
                                                   submitted.get(spec))
                            _progress(stats, len(results))
                        elif status == "timeout":
                            if registry is not None:
                                registry.counter("executor.timeouts").inc()
                            _fail_attempt_span(recorder, spec,
                                               attempt_spans, "timeout")
                            _requeue(spec, attempts, retries, queue, stats,
                                     f"timed out after {timeout_s}s",
                                     registry)
                        else:
                            _fail_attempt_span(recorder, spec,
                                               attempt_spans, str(payload))
                            _requeue(spec, attempts, retries, queue, stats,
                                     payload, registry)
            except BrokenProcessPool:
                for future, spec in futures.items():
                    if spec not in results and spec not in queue:
                        # Drop the pre-crash submission stamp: the spec
                        # is re-stamped when the rebuilt pool resubmits
                        # it, so its queue wait restarts at zero.
                        submitted.pop(spec, None)
                        _fail_attempt_span(recorder, spec, attempt_spans,
                                           "worker process crashed")
                        _requeue(spec, attempts, retries, queue, stats,
                                 "worker process crashed", registry)


def _finish_pool_spans(recorder, spec, spec_spans, attempt_spans,
                       span_payloads) -> None:
    """Close out one pool completion: adopt the worker's spans, record
    the queue wait (attempt start → worker.run start, same host), and
    finish the attempt and spec spans."""
    attempt_span = attempt_spans.pop(spec, None)
    spec_span = spec_spans.pop(spec, None)
    worker_started = None
    if span_payloads:
        recorder.adopt(span_payloads)
        worker_started = min(
            (p["start_s"] for p in span_payloads
             if p.get("name") == "worker.run"), default=None)
    if attempt_span is not None:
        if worker_started is not None \
                and worker_started > attempt_span.start_s:
            recorder.add("queue.wait", attempt_span.start_s,
                         worker_started, parent=attempt_span)
        recorder.finish(attempt_span)
    if spec_span is not None:
        recorder.finish(spec_span)


def _fail_attempt_span(recorder, spec, attempt_spans, why: str) -> None:
    """Finish a failed submission's attempt span (the spec span stays
    open: the retry's attempt span parents under it)."""
    if recorder is None:
        return
    attempt_span = attempt_spans.pop(spec, None)
    if attempt_span is not None:
        recorder.finish(attempt_span, error=why)


def _observe_pool_spec(registry, sim_s: Optional[float],
                       submitted_at: Optional[float]) -> None:
    """Record one pool completion: simulation time and queue wait."""
    turnaround = (time.perf_counter() - submitted_at
                  if submitted_at is not None else None)
    if sim_s is None:
        sim_s = turnaround
    if sim_s is not None:
        registry.timer("executor.spec_seconds").observe(sim_s)
    if turnaround is not None and sim_s is not None:
        registry.timer("executor.queue_wait_seconds").observe(
            max(0.0, turnaround - sim_s))


def _requeue(spec: RunSpec, attempts: Dict[RunSpec, int], retries: int,
             queue: List[RunSpec], stats: BatchStats, why: str,
             registry=None) -> None:
    if attempts[spec] > retries:
        raise ExecutorError(
            f"{spec} failed after {attempts[spec]} attempts: {why}")
    logger.warning("requeueing %s (attempt %d/%d): %s",
                   spec, attempts[spec], retries + 1, why)
    stats.retried += 1
    if registry is not None:
        registry.counter("executor.requeues").inc()
    queue.append(spec)
