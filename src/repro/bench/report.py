"""Machine-readable experiment reports.

Exports any :class:`~repro.bench.tables.TableResult` (or a whole set)
as JSON so downstream users can diff runs across code revisions or
hardware-model changes — the workflow the paper's artifact supports
with its ``--expected`` canonical-results flag (Appendix A-G1).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, Union

from .tables import TableResult


def table_to_dict(table: TableResult) -> Dict:
    """A JSON-safe projection of one table/figure."""
    return {
        "name": table.name,
        "headers": list(table.headers),
        "rows": [[_jsonable(cell) for cell in row] for row in table.rows],
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_report(tables: Iterable[TableResult],
                 path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a JSON report of several tables to ``path``."""
    path = pathlib.Path(path)
    payload = {"tables": [table_to_dict(t) for t in tables]}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: Union[str, pathlib.Path]) -> Dict:
    return json.loads(pathlib.Path(path).read_text())


def compare_reports(old: Dict, new: Dict,
                    tolerance: float = 0.05) -> Dict[str, list]:
    """Field-by-field numeric comparison of two reports.

    Returns ``{table name: [difference descriptions]}`` for every
    numeric cell whose relative change exceeds ``tolerance`` — the
    regression check a downstream user runs after modifying a defense
    or the core model.
    """
    differences: Dict[str, list] = {}
    old_tables = {t["name"]: t for t in old.get("tables", [])}
    for table in new.get("tables", []):
        name = table["name"]
        if name not in old_tables:
            differences.setdefault(name, []).append("new table")
            continue
        previous = old_tables[name]
        if len(previous["rows"]) != len(table["rows"]):
            differences.setdefault(name, []).append(
                f"row count {len(previous['rows'])} -> "
                f"{len(table['rows'])}")
            continue
        for row_old, row_new in zip(previous["rows"], table["rows"]):
            for col, (a, b) in enumerate(zip(row_old, row_new)):
                if (isinstance(a, (int, float)) and not isinstance(a, bool)
                        and isinstance(b, (int, float))
                        and not isinstance(b, bool)):
                    base = abs(a) if a else 1.0
                    if abs(b - a) / base > tolerance:
                        differences.setdefault(name, []).append(
                            f"{row_new[0]} col {col}: {a} -> {b}")
    return differences
