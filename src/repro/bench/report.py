"""Machine-readable experiment reports.

Exports any :class:`~repro.bench.tables.TableResult` (or a whole set)
as JSON so downstream users can diff runs across code revisions or
hardware-model changes — the workflow the paper's artifact supports
with its ``--expected`` canonical-results flag (Appendix A-G1).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, Union

from ..uarch.pipeline import STALL_CAUSES
from .tables import TableResult


def table_to_dict(table: TableResult) -> Dict:
    """A JSON-safe projection of one table/figure."""
    return {
        "name": table.name,
        "headers": list(table.headers),
        "rows": [[_jsonable(cell) for cell in row] for row in table.rows],
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_report(tables: Iterable[TableResult],
                 path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a JSON report of several tables to ``path``."""
    path = pathlib.Path(path)
    payload = {"tables": [table_to_dict(t) for t in tables]}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: Union[str, pathlib.Path]) -> Dict:
    return json.loads(pathlib.Path(path).read_text())


def _hit_rate(hits: int, misses: int) -> str:
    total = hits + misses
    return f"{100 * hits / total:.1f}%" if total else "-"


def format_run_stats(spec, summary, width: int) -> str:
    """Human-readable rendition of one run's full stats schema: IPC,
    cache/TLB hit rates, the stall-cause breakdown (shares of the
    ``width * cycles`` issue-slot budget), and defense counters.

    Backs the ``repro stats`` subcommand.  ``summary`` is any object
    with ``cycles``/``instructions``/``stat`` (a ``RunSummary``).
    """
    from .runner import render_table

    stats = summary.stats if isinstance(summary.stats, dict) \
        else dict(summary.stats)
    lines = [
        f"workload={spec.workload} defense={spec.defense} "
        f"instrument={spec.instrument} core={spec.core}",
        f"cycles={summary.cycles} instructions={summary.instructions} "
        f"ipc={summary.instructions / summary.cycles:.3f}",
        "",
    ]
    cache_rows = []
    for level in ("l1d", "l2", "l3", "tlb"):
        hits = stats.get(f"{level}_hits", 0)
        misses = stats.get(f"{level}_misses", 0)
        cache_rows.append([level, hits, misses, _hit_rate(hits, misses)])
    lines.append(render_table("caches", ["level", "hits", "misses", "rate"],
                              cache_rows))
    lines.append("")

    slots = width * summary.cycles
    stall_rows = []
    for cause in STALL_CAUSES:
        count = stats.get(f"stall_{cause}", 0)
        if count:
            stall_rows.append([cause, count,
                               f"{100 * count / slots:.1f}%"])
    stall_rows.sort(key=lambda row: -row[1])
    committed = stats.get("committed_uops", 0)
    stall_rows.insert(0, ["(commit)", committed,
                          f"{100 * committed / slots:.1f}%" if slots else "-"])
    lines.append(render_table(f"issue-slot breakdown ({slots} slots)",
                              ["cause", "slots", "share"], stall_rows))
    lines.append("")

    other_rows = [[key, value] for key, value in sorted(stats.items())
                  if not key.startswith(("stall_", "l1d_", "l2_", "l3_",
                                         "tlb_"))
                  and key != "committed_uops"]
    lines.append(render_table("counters", ["counter", "value"], other_rows))
    return "\n".join(lines)


def compare_reports(old: Dict, new: Dict,
                    tolerance: float = 0.05) -> Dict[str, list]:
    """Field-by-field numeric comparison of two reports.

    Returns ``{table name: [difference descriptions]}`` for every
    numeric cell whose relative change exceeds ``tolerance`` — the
    regression check a downstream user runs after modifying a defense
    or the core model.
    """
    differences: Dict[str, list] = {}
    old_tables = {t["name"]: t for t in old.get("tables", [])}
    for table in new.get("tables", []):
        name = table["name"]
        if name not in old_tables:
            differences.setdefault(name, []).append("new table")
            continue
        previous = old_tables[name]
        if len(previous["rows"]) != len(table["rows"]):
            differences.setdefault(name, []).append(
                f"row count {len(previous['rows'])} -> "
                f"{len(table['rows'])}")
            continue
        for row_old, row_new in zip(previous["rows"], table["rows"]):
            for col, (a, b) in enumerate(zip(row_old, row_new)):
                if (isinstance(a, (int, float)) and not isinstance(a, bool)
                        and isinstance(b, (int, float))
                        and not isinstance(b, bool)):
                    base = abs(a) if a else 1.0
                    if abs(b - a) / base > tolerance:
                        differences.setdefault(name, []).append(
                            f"{row_new[0]} col {col}: {a} -> {b}")
    return differences
