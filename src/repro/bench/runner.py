"""Experiment runner: one cached entry point for every (workload,
defense, instrumentation, core, knob...) combination the paper's tables
and figures need.

Normalization follows the paper (SVIII-A): every defense's runtime —
including ProtCC instrumentation overhead, since Protean runs the
instrumented binary — is divided by the *unsafe baseline running the
base binary* on the same core.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..defenses import (
    AccessDelay,
    AccessTrack,
    ProtDelay,
    ProtTrack,
    SPT,
    SPTSB,
    Unsafe,
)
from ..metrics.registry import get_registry
from ..isa.program import Program
from ..protcc import CompiledProgram, compile_program, mitigate_program
from ..uarch.config import CoreConfig, E_CORE, L1DTagMode, P_CORE, SpeculationModel
from ..uarch.pipeline import CoreResult, simulate
from ..workloads import get_workload

#: Defense factories by harness name.  ``delay-raw``/``track-raw`` are
#: the paper's SIX-A4 ablation: AccessDelay/AccessTrack applied to
#: ProtISA directly (selective wakeup / access predictor disabled).
DEFENSES: Dict[str, Callable[..., object]] = {
    "unsafe": Unsafe,
    "nda": AccessDelay,
    "stt": AccessTrack,
    "spt": SPT,
    "spt-sb": SPTSB,
    "delay": ProtDelay,
    "track": ProtTrack,
    "delay-raw": lambda: ProtDelay(selective_wakeup=False),
    "track-raw": lambda: ProtTrack(use_predictor=False),
}

#: Which secure baseline targets each vulnerable-code class (Tab. I).
CLASS_BASELINE = {"arch": "stt", "cts": "spt", "ct": "spt", "unr": "spt-sb"}

CORES = {"P": P_CORE, "E": E_CORE}

#: Sentinel for an infinitely-sized access predictor (Fig. 5).
INFINITE = "inf"


@dataclass(frozen=True)
class RunSpec:
    """A fully-specified simulation to run (hashable cache key)."""

    workload: str
    defense: str = "unsafe"
    #: None: base binary.  "auto": the workload's own class(es).
    #: Otherwise: a single ProtCC class name.
    instrument: Optional[str] = None
    #: Software mitigation pass (``repro.protcc.MITIGATIONS``) applied
    #: to the (possibly instrumented) binary; None runs it unmitigated.
    mitigation: Optional[str] = None
    core: str = "P"
    l1d_tags: str = "l1d"
    speculation: str = "atcommit"
    buggy_squash: bool = False
    div_transmitter: bool = True
    predictor_entries: Union[int, str, None] = 1024

    def core_config(self) -> CoreConfig:
        config = CORES[self.core]
        return config.replace(
            l1d_tag_mode=L1DTagMode(self.l1d_tags),
            speculation_model=SpeculationModel(self.speculation),
            buggy_squash_notify=self.buggy_squash,
            div_is_transmitter=self.div_transmitter,
        )

    def defense_instance(self):
        if self.defense == "track":
            entries = self.predictor_entries
            if entries == INFINITE:
                entries = None
            return ProtTrack(predictor_entries=entries)
        return DEFENSES[self.defense]()


_compile_cache: Dict[Tuple[str, Optional[str]], CompiledProgram] = {}

_mitigate_cache: Dict[Tuple[str, Optional[str], str], "Program"] = {}

#: Full ``CoreResult`` objects (memory image + timing trace) are only
#: needed by trace consumers (contracts, fuzzing, adversary models), so
#: the full-result cache is a small LRU instead of an unbounded dict.
#: Perf-only paths go through ``repro.bench.executor.run_summary``,
#: which retains slim summaries only.
_RUN_CACHE_LIMIT = 32
_run_cache: "OrderedDict[RunSpec, CoreResult]" = OrderedDict()


def compiled(workload_name: str, instrument: Optional[str]) -> CompiledProgram:
    """ProtCC-compile a workload (cached)."""
    key = (workload_name, instrument)
    if key not in _compile_cache:
        workload = get_workload(workload_name)
        if instrument is None:
            classes: Union[str, Dict[str, str]] = "arch"  # no-op pass
        elif instrument == "auto":
            classes = workload.classes
        else:
            classes = instrument
        _compile_cache[key] = compile_program(workload.program, classes)
    return _compile_cache[key]


def mitigated(workload_name: str, instrument: Optional[str],
              mitigation: str) -> "Program":
    """The workload's (possibly ProtCC-instrumented) binary with one
    software mitigation pass applied (cached)."""
    key = (workload_name, instrument, mitigation)
    if key not in _mitigate_cache:
        if instrument is None:
            program = get_workload(workload_name).program
        else:
            program = compiled(workload_name, instrument).program
        _mitigate_cache[key] = mitigate_program(program, mitigation).program
    return _mitigate_cache[key]


def execute_spec(spec: RunSpec, tracer=None,
                 engine: Optional[str] = None,
                 ledger=None) -> CoreResult:
    """Simulate one configuration, uncached (the raw primitive both the
    full-result path below and the batch executor build on).

    ``tracer`` (a :class:`repro.uarch.trace.PipelineTracer`) records
    per-uop pipeline events for ``repro trace``; None — the default —
    is the zero-overhead path.  ``ledger`` (a
    :class:`repro.uarch.speculation.InterventionLedger`) records every
    defense-intervention episode for ``repro speculation``; like an
    attached tracer it pins the per-cycle interpreter.

    ``engine`` picks the simulation engine (see
    :data:`repro.uarch.pipeline.ENGINES`); None defers to the
    ``REPRO_ENGINE`` environment variable and then to auto-selection
    (compiled when possible).  The env-var path is what lets ``repro
    bench --engine`` reach pool workers: child processes inherit the
    environment, not the parent's argument values.
    """
    workload = get_workload(spec.workload)
    if spec.mitigation is not None:
        program = mitigated(spec.workload, spec.instrument, spec.mitigation)
    elif spec.instrument is None:
        program = workload.program
    else:
        program = compiled(spec.workload, spec.instrument).program
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE") or None
    result = simulate(program, spec.defense_instance(),
                      spec.core_config(), workload.memory, workload.regs,
                      tracer=tracer, ledger=ledger, engine=engine)
    if result.halt_reason != "halt":
        raise RuntimeError(
            f"{spec} did not run to completion: {result.halt_reason}")
    return result


def run(spec: RunSpec) -> CoreResult:
    """Simulate one configuration, returning the *full* result (memory
    image, timing trace, committed streams) for trace consumers.

    Perf-only callers should use :func:`repro.bench.executor.run_summary`
    or :func:`repro.bench.executor.run_batch`, which are persistent and
    parallel and never retain memory images.
    """
    if spec in _run_cache:
        _run_cache.move_to_end(spec)
        return _run_cache[spec]
    result = execute_spec(spec)
    _run_cache[spec] = result
    while len(_run_cache) > _RUN_CACHE_LIMIT:
        _run_cache.popitem(last=False)
        registry = get_registry()
        if registry is not None:
            registry.counter("cache.full_result_evictions").inc()
    return result


def clear_caches() -> None:
    from ..uarch.compiled import clear_compile_cache
    from .executor import clear_summary_cache

    _compile_cache.clear()
    _mitigate_cache.clear()
    _run_cache.clear()
    clear_summary_cache()
    clear_compile_cache()


def norm_runtime(workload: str, defense: str,
                 instrument: Optional[str] = None, core: str = "P",
                 **knobs) -> float:
    """Runtime normalized to the unsafe baseline on the base binary."""
    from .executor import run_summary

    base = run_summary(RunSpec(workload=workload, core=core))
    this = run_summary(RunSpec(workload=workload, defense=defense,
                               instrument=instrument, core=core, **knobs))
    return this.cycles / base.cycles


def protean_norm(workload: str, mechanism: str, core: str = "P",
                 **knobs) -> float:
    """Protean (delay/track) on the workload's own-class binary."""
    return norm_runtime(workload, mechanism, instrument="auto", core=core,
                        **knobs)


def baseline_norm(workload: str, core: str = "P", **knobs) -> float:
    """The workload's most performant applicable secure baseline."""
    name = get_workload(workload).baseline.lower()
    if name not in DEFENSES:
        raise ValueError(
            f"workload {workload!r} declares unknown baseline {name!r}; "
            f"known defenses: {sorted(DEFENSES)}")
    return norm_runtime(workload, name, core=core, **knobs)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; rejects empty and non-positive input up front
    (instead of returning NaN or raising a bare ``math`` domain error
    deep inside a table builder)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence is undefined")
    bad = [v for v in values if not v > 0]
    if bad:
        raise ValueError(
            f"geomean requires positive values; got {bad[:5]!r}"
            + (" ..." if len(bad) > 5 else ""))
    return math.exp(sum(math.log(v) for v in values) / len(values))


def render_table(title: str, headers: List[str],
                 rows: List[List[object]]) -> str:
    """Simple fixed-width ASCII table renderer."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [max(len(headers[i]),
                  max((len(r[i]) for r in text_rows), default=0))
              for i in range(len(headers))]
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(row))))
    return "\n".join(lines)
