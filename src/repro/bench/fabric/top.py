"""``repro top``: a live terminal monitor for one fabric spool.

The fabric's operator view.  Everything it shows comes from the spool
database the broker and workers already maintain — job state counts,
per-worker liveness rows, lease timestamps — so it attaches to any
running (or finished) campaign read-only, from any host that can reach
the spool directory, with zero coordination.

``sample`` takes one consistent-enough snapshot (reads are individual
queries; the fabric's counters only move forward, so a torn read is at
worst one job off), ``render`` formats it, and ``run_top`` loops the
two with an ANSI home-and-clear when stdout is a terminal.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .spool import DONE, FAILED, LEASED, PENDING, Spool

#: A worker whose spool heartbeat is older than this is rendered
#: ``stale``; past ``GONE_S`` it is ``gone`` (dead or departed).
STALE_S = 15.0
GONE_S = 60.0

#: Completions inside this trailing window feed the throughput figure.
THROUGHPUT_WINDOW_S = 60.0

#: How many in-flight jobs the slowest-jobs table shows.
MAX_INFLIGHT_ROWS = 5


@dataclass
class TopView:
    """One rendered-ready snapshot of a spool."""

    spool_dir: str
    time_s: float
    counts: Dict[str, int] = field(default_factory=dict)
    workers: List[Dict] = field(default_factory=list)
    #: Jobs completed in the trailing throughput window.
    recent_done: int = 0
    window_s: float = THROUGHPUT_WINDOW_S
    #: Leased jobs, slowest (oldest lease) first.
    inflight: List[Dict] = field(default_factory=list)

    @property
    def throughput_per_min(self) -> float:
        return 60.0 * self.recent_done / self.window_s \
            if self.window_s else 0.0


def _worker_status(age_s: float) -> str:
    if age_s <= STALE_S:
        return "live"
    if age_s <= GONE_S:
        return "stale"
    return "gone"


def sample(spool: Spool, window_s: float = THROUGHPUT_WINDOW_S,
           now: Optional[float] = None) -> TopView:
    """Snapshot one spool into a :class:`TopView`."""
    now = time.time() if now is None else now
    view = TopView(spool_dir=str(spool.directory), time_s=now,
                   window_s=window_s)
    view.counts = spool.counts()
    view.recent_done = spool.finished_since(now - window_s)
    for worker in spool.workers():
        age = max(0.0, now - worker["heartbeat"])
        view.workers.append({
            "id": worker["id"],
            "status": _worker_status(age),
            "heartbeat_age_s": age,
            "completed": worker["completed"],
            "duplicates": worker["duplicates"],
            "released": worker["released"],
            "heartbeat_errors": worker.get("heartbeat_errors", 0),
        })
    leased = []
    for job in spool.jobs(LEASED):
        leased_at = job.leased_at if job.leased_at is not None \
            else job.lease_deadline or now
        leased.append({
            "key": job.key[:12],
            "kind": job.kind,
            "worker": job.worker or "?",
            "attempt": job.attempts,
            "age_s": max(0.0, now - leased_at),
        })
    leased.sort(key=lambda row: (-row["age_s"], row["key"]))
    view.inflight = leased[:MAX_INFLIGHT_ROWS]
    return view


def render(view: TopView) -> str:
    """Format one snapshot as the ``repro top`` screen."""
    counts = view.counts
    total = sum(counts.values())
    done = counts.get(DONE, 0)
    lines = [
        f"repro top — spool {view.spool_dir}",
        f"jobs: {counts.get(PENDING, 0)} pending, "
        f"{counts.get(LEASED, 0)} leased, {done} done, "
        f"{counts.get(FAILED, 0)} failed"
        + (f"  ({100 * done / total:.0f}% complete)" if total else ""),
        f"throughput: {view.throughput_per_min:.1f} jobs/min "
        f"(last {view.window_s:.0f}s: {view.recent_done})",
        "",
    ]
    if view.workers:
        lines.append(f"{'WORKER':<28} {'STATUS':<7} {'HB AGE':>7} "
                     f"{'DONE':>6} {'DUP':>5} {'REL':>5} {'HB ERR':>7}")
        for worker in view.workers:
            lines.append(
                f"{worker['id']:<28} {worker['status']:<7} "
                f"{worker['heartbeat_age_s']:>6.1f}s "
                f"{worker['completed']:>6} {worker['duplicates']:>5} "
                f"{worker['released']:>5} {worker['heartbeat_errors']:>7}")
    else:
        lines.append("no workers have registered with this spool yet "
                     "(start one: `repro work --spool "
                     f"{view.spool_dir}`)")
    lines.append("")
    if view.inflight:
        lines.append("slowest in-flight jobs:")
        for job in view.inflight:
            lines.append(
                f"  {job['key']}…  {job['kind']:<12} "
                f"attempt {job['attempt']}  on {job['worker']:<28} "
                f"{job['age_s']:>6.1f}s")
    else:
        lines.append("no jobs in flight")
    return "\n".join(lines)


def run_top(spool_dir, interval_s: float = 2.0, once: bool = False,
            window_s: float = THROUGHPUT_WINDOW_S, stream=None) -> int:
    """The ``repro top`` loop: sample, render, repeat.

    ``once`` prints a single snapshot and returns (scripts, tests, CI
    logs); otherwise the screen refreshes every ``interval_s`` seconds
    until interrupted.  Read-only: attaching ``top`` to a live campaign
    perturbs nothing but a few SQLite read locks.
    """
    stream = stream if stream is not None else sys.stdout
    with Spool(spool_dir) as spool:
        while True:
            view = sample(spool, window_s=window_s)
            body = render(view)
            if not once and getattr(stream, "isatty", lambda: False)():
                stream.write("\x1b[2J\x1b[H")  # clear + home
            stream.write(body + "\n")
            stream.flush()
            if once:
                return 0
            try:
                time.sleep(interval_s)
            except KeyboardInterrupt:
                return 0
