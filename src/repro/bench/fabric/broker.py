"""The broker: shard a job matrix into the spool, watch it drain,
merge the results deterministically.

The broker is a client, not a daemon: it submits, polls (reaping
expired leases and updating fabric gauges as it goes), and collects.
Merged results are keyed by spec — never by completion order — so a
sharded campaign is byte-identical to a serial ``run_batch`` of the
same matrix: result identity comes from the simulation being a pure
function of its spec, and the merge step adds nothing but transport.
"""

from __future__ import annotations

import json
import logging
import os
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...metrics.spans import get_recorder, span_attrs_for_spec
from .spool import DONE, FAILED, LEASED, PENDING, Spool

logger = logging.getLogger(__name__)

#: Job kinds the fabric ships (workers dispatch on this).
KIND_SPEC = "spec"
KIND_FUZZ = "fuzz-program"

#: Default lease duration.  Workers heartbeat at a third of this, so a
#: worker must miss several heartbeats before its job is reassigned.
DEFAULT_LEASE_S = 30.0

#: Environment override for how long a broker waits for workers before
#: giving up (seconds; unset = wait forever).
FABRIC_TIMEOUT_ENV = "REPRO_FABRIC_TIMEOUT"


def spec_job(spec) -> Tuple[str, str, Dict]:
    """The spool entry for one RunSpec: keyed by the same
    content-addressed hash as the result cache, so respooling the same
    matrix (broker restart, overlapping campaigns) dedups for free and
    a code change automatically respools everything."""
    from ..executor import spec_cache_key, spec_to_payload

    return (spec_cache_key(spec), KIND_SPEC, spec_to_payload(spec))


class Broker:
    """Submit jobs, wait for the spool to drain, collect results."""

    def __init__(self, spool_dir, *, retries: Optional[int] = None,
                 poll_s: float = 0.2) -> None:
        from ..executor import DEFAULT_RETRIES

        self.spool = Spool(spool_dir)
        self.poll_s = poll_s
        self.spool.set_retries(DEFAULT_RETRIES if retries is None
                               else retries)
        #: Keys this broker submitted (what ``wait`` watches).
        self.keys: List[str] = []
        #: Per-worker clock-offset estimates (worker wall − broker
        #: wall, seconds).  A heartbeat written at worker time ``hb``
        #: and read at broker time ``tb`` satisfies
        #: ``hb − tb = offset − staleness`` with staleness ≥ 0, so the
        #: max of ``hb − tb`` over samples converges on the offset from
        #: below; the trace merger shifts worker spans by it.
        self.clock_offsets: Dict[str, float] = {}

    def close(self) -> None:
        self.spool.close()

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------

    def submit_jobs(self, jobs: Sequence[Tuple[str, str, Dict]],
                    registry=None,
                    traces: Optional[Dict[str, Dict]] = None
                    ) -> Dict[str, int]:
        outcome = self.spool.submit(jobs, traces=traces)
        self.keys.extend(key for key, _, _ in jobs)
        if registry is not None:
            registry.counter("fabric.submitted").inc(outcome["new"])
            registry.counter("fabric.reused").inc(outcome["done"])
        logger.info(
            "fabric submit: %d new, %d already done, %d already open "
            "in %s", outcome["new"], outcome["done"], outcome["open"],
            self.spool.directory)
        return outcome

    def submit_specs(self, specs: Iterable, registry=None,
                     traces: Optional[Dict[str, Dict]] = None
                     ) -> Dict[str, int]:
        return self.submit_jobs([spec_job(spec) for spec in specs],
                                registry=registry, traces=traces)

    # -- progress ------------------------------------------------------

    def wait(self, timeout_s: Optional[float] = None,
             registry=None) -> None:
        """Block until every submitted job is done.

        Broker duties while polling: return expired leases to the pool
        (counting ``fabric.lease_expiries``), mark jobs that exhausted
        their attempt budget failed, and refresh the fabric gauges —
        including one liveness gauge per registered worker.  Raises
        :class:`repro.bench.executor.ExecutorError` on failed jobs or
        timeout.
        """
        from ..executor import ExecutorError

        if timeout_s is None:
            env = os.environ.get(FABRIC_TIMEOUT_ENV, "")
            timeout_s = float(env) if env else None
        started = time.monotonic()
        while True:
            expired = self.spool.reap_expired()
            if expired and registry is not None:
                registry.counter("fabric.lease_expiries").inc(expired)
            self.spool.fail_exhausted()
            counts = self.spool.counts(self.keys)
            self._update_gauges(registry, counts)
            if counts[FAILED]:
                raise ExecutorError(self._failure_message())
            if counts[PENDING] == 0 and counts[LEASED] == 0:
                return
            if (timeout_s is not None
                    and time.monotonic() - started > timeout_s):
                raise ExecutorError(
                    f"fabric wait timed out after {timeout_s}s with "
                    f"{counts[PENDING]} pending / {counts[LEASED]} "
                    f"leased jobs — are any workers running "
                    f"(`repro work --spool {self.spool.directory}`)?")
            time.sleep(self.poll_s)

    def _update_gauges(self, registry, counts: Dict[str, int]) -> None:
        now = time.time()
        for worker in self.spool.workers():
            sample = worker["heartbeat"] - now
            previous = self.clock_offsets.get(worker["id"])
            if previous is None or sample > previous:
                self.clock_offsets[worker["id"]] = sample
        if registry is None:
            return
        registry.gauge("fabric.pending").set(counts[PENDING])
        registry.gauge("fabric.leased").set(counts[LEASED])
        registry.gauge("fabric.done").set(counts[DONE])
        registry.gauge("fabric.failed").set(counts[FAILED])
        workers = self.spool.workers()
        stale_s = max(10.0, 5 * self.poll_s)
        active = sum(1 for w in workers
                     if now - w["heartbeat"] <= stale_s)
        registry.gauge("fabric.workers_active").set(active)
        for worker in workers:
            prefix = f"fabric.worker.{worker['id']}"
            registry.gauge(f"{prefix}.completed").set(worker["completed"])
            registry.gauge(f"{prefix}.duplicates").set(
                worker["duplicates"])
            registry.gauge(f"{prefix}.heartbeat_age_s").set(
                max(0.0, now - worker["heartbeat"]))

    def _failure_message(self) -> str:
        failed = [job for job in self.spool.jobs(FAILED)
                  if job.key in set(self.keys)]
        lines = [f"{len(failed)} fabric job(s) failed:"]
        for job in failed[:5]:
            lines.append(f"  {job.kind} {job.key[:12]}… after "
                         f"{job.attempts} attempts: {job.error}")
        if len(failed) > 5:
            lines.append(f"  … and {len(failed) - 5} more")
        return "\n".join(lines)

    # -- collection ----------------------------------------------------

    def collect(self, keys: Iterable[str]) -> Dict[str, str]:
        """Raw result texts for ``keys`` (every key must be done)."""
        from ..executor import ExecutorError

        results: Dict[str, str] = {}
        missing: List[str] = []
        for key in keys:
            job = self.spool.job(key)
            if job is None or job.state != DONE or job.result is None:
                missing.append(key)
            else:
                results[key] = job.result
        if missing:
            raise ExecutorError(
                f"{len(missing)} fabric job(s) have no result "
                f"(first: {missing[0][:12]}…) — collect() before wait()?")
        return results

    def collect_specs(self, specs: Sequence) -> Dict:
        """Deterministic merge: ``{spec: RunSummary}`` for a spec
        matrix, in caller order, byte-identical to a serial run."""
        from ..executor import RunSummary, spec_cache_key

        by_key = self.collect([spec_cache_key(spec) for spec in specs])
        return {spec: RunSummary.from_dict(
                    json.loads(by_key[spec_cache_key(spec)]))
                for spec in specs}


def run_batch_fabric(pending: Sequence, spool_dir, results: Dict,
                     stats, retries: Optional[int] = None,
                     registry=None) -> None:
    """The ``run_batch`` fabric backend: shard ``pending`` through the
    spool at ``spool_dir`` and merge the results back exactly as the
    local pool path would (results dict, in-memory summary cache, disk
    cache), so callers cannot tell where a spec ran.

    With a span recorder attached, each spec gets a broker-side span
    whose wire context rides in the spool's ``trace`` column — workers
    parent their lease/run/result spans under it — and the broker's
    shard (plus its per-worker clock-offset estimates) lands in the
    spool's ``metrics/`` directory for ``repro trace-merge``.
    """
    from .. import executor as _executor
    from ..executor import spec_cache_key

    recorder = get_recorder()
    spec_spans = {}
    traces = None
    if recorder is not None:
        for spec in pending:
            spec_spans[spec] = recorder.start(
                "spec", attrs=dict(span_attrs_for_spec(spec),
                                   fabric=str(spool_dir)))
        traces = {spec_cache_key(spec): spec_spans[spec].context()
                  for spec in pending}
    with Broker(spool_dir, retries=retries) as broker:
        metrics_dir = broker.spool.metrics_dir
        if recorder is None:
            outcome = broker.submit_specs(pending, registry=registry)
            stats.jobs = 0  # jobs are worker-owned in fabric mode
            broker.wait(registry=registry)
            merged = broker.collect_specs(pending)
        else:
            with recorder.span("fabric.submit"):
                outcome = broker.submit_specs(pending, registry=registry,
                                              traces=traces)
            stats.jobs = 0
            with recorder.span("fabric.wait",
                               attrs={"jobs": len(pending)}):
                broker.wait(registry=registry)
            with recorder.span("fabric.merge"):
                merged = broker.collect_specs(pending)
        clock_offsets = dict(broker.clock_offsets)
    for spec in pending:
        summary = merged[spec]
        results[spec] = summary
        _executor._summary_cache[spec] = summary
        _executor.cache_store(spec, summary)
    # Rows that were already done in the spool are shared-state reuse
    # (a disk hit in fabric clothing); the rest were simulated by
    # workers on this broker's behalf.
    stats.disk_hits += outcome["done"]
    stats.simulated += len(pending) - outcome["done"]
    if registry is not None:
        registry.counter("fabric.collected").inc(len(pending))
    if recorder is not None:
        for spec in pending:
            recorder.finish(spec_spans[spec])
        recorder.write_shard(metrics_dir, clock_offsets=clock_offsets)
