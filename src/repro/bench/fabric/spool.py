"""The durable job spool: one SQLite database on a (shared) filesystem.

The spool is the fabric's only coordination point.  Brokers insert
jobs, workers lease them, results land back in the job rows — every
transition is a single SQLite transaction, so the fabric needs no
message broker, no sockets, and no daemon beyond the workers
themselves: any filesystem both sides can reach (including NFS, which
SQLite locks correctly for the short transactions used here) is a
deployment.

Robustness properties:

* **Leases, not assignments.**  A claim marks the job ``leased`` with a
  deadline; the worker's heartbeat thread extends it while the job
  runs.  A worker that dies (or loses its heartbeat) simply lets the
  deadline pass, after which the job is claimable again — by any
  worker, with no broker intervention.
* **Per-job attempt accounting.**  Every lease charges one attempt
  (exactly the executor's ``_requeue`` semantics: ``retries + 1`` total
  attempts); a job that keeps failing or keeps killing its workers is
  marked ``failed`` instead of looping forever.
* **First writer wins, byte-equality asserted.**  Two workers can race
  the same job (lease expiry is time-based, and a "dead" worker may
  just have been slow).  The first ``done`` transition stores the
  result; a second completion is a ``duplicate`` whose result text must
  be byte-identical — simulations are pure functions of their spec, so
  a mismatch is a determinism bug worth crashing over.
* **Exponential backoff on contention.**  Short SQLite lock conflicts
  are retried with exponential backoff (counted in
  ``fabric.backoffs``), so a burst of workers against one database
  degrades gracefully instead of erroring.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...metrics.registry import get_registry

#: Job states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"

#: Bumped whenever the spool schema changes; a spool written by a
#: different schema is refused rather than misread.
#: 2: jobs carry a ``trace`` context column (distributed tracing —
#:    deliberately outside the content-addressed payload, so tracing
#:    never perturbs job identity or dedup) and a ``leased_at``
#:    timestamp (in-flight age in ``repro top``); workers report
#:    ``heartbeat_errors``.
SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    key TEXT PRIMARY KEY,
    seq INTEGER NOT NULL,
    kind TEXT NOT NULL,
    payload TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    worker TEXT,
    lease_deadline REAL,
    leased_at REAL,
    result TEXT,
    error TEXT,
    trace TEXT,
    created REAL NOT NULL,
    finished REAL
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs(state, seq);
CREATE TABLE IF NOT EXISTS workers (
    id TEXT PRIMARY KEY,
    host TEXT,
    pid INTEGER,
    started REAL NOT NULL,
    heartbeat REAL NOT NULL,
    completed INTEGER NOT NULL DEFAULT 0,
    duplicates INTEGER NOT NULL DEFAULT 0,
    released INTEGER NOT NULL DEFAULT 0,
    heartbeat_errors INTEGER NOT NULL DEFAULT 0
);
"""


class SpoolError(RuntimeError):
    """The spool is unusable (schema mismatch, persistent contention)."""


class ResultMismatch(SpoolError):
    """Two workers produced byte-different results for one job — a
    determinism bug in the simulator, never tolerated silently."""


@dataclass
class Job:
    """One spooled unit of work."""

    key: str
    seq: int
    kind: str
    payload: Dict = field(default_factory=dict)
    state: str = PENDING
    attempts: int = 0
    worker: Optional[str] = None
    lease_deadline: Optional[float] = None
    result: Optional[str] = None
    error: Optional[str] = None
    #: True when this claim took over an expired lease (the previous
    #: worker died or stalled past its heartbeat).
    reassigned: bool = False
    #: Trace wire context (``{"trace_id", "span_id"}``) of the
    #: submitting side's per-job span, or None when the broker ran
    #: without tracing.  Stored in its own column — never in the
    #: content-addressed payload — so tracing cannot change job keys.
    trace: Optional[Dict] = None
    #: When the current lease was taken (in-flight age in ``repro top``).
    leased_at: Optional[float] = None


class Spool:
    """Handle on one spool directory (``DIR/spool.db`` + ``DIR/metrics``).

    Every process (broker, each worker, each heartbeat thread) opens
    its own :class:`Spool`; instances are not shared across threads.
    """

    def __init__(self, directory, *,
                 backoff_base_s: float = 0.01,
                 backoff_cap_s: float = 1.0,
                 backoff_attempts: int = 10) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics_dir = self.directory / "metrics"
        self.metrics_dir.mkdir(exist_ok=True)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.backoff_attempts = backoff_attempts
        self.backoffs = 0
        self._conn = sqlite3.connect(str(self.directory / "spool.db"),
                                     timeout=0.05, isolation_level=None)
        # executescript commits on its own (it ends any open
        # transaction), so schema creation and the version check are
        # separate retried steps rather than one transaction.
        self._retry(lambda: self._conn.executescript(_SCHEMA))
        self._txn(self._check_schema)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Spool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- contention handling -------------------------------------------

    def _retry(self, fn):
        """Run one transaction, backing off exponentially on lock
        contention (``fabric.backoffs`` counts every retry)."""
        delay = self.backoff_base_s
        for attempt in range(self.backoff_attempts):
            try:
                return fn()
            except sqlite3.OperationalError as exc:
                message = str(exc)
                if "locked" not in message and "busy" not in message:
                    raise
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.OperationalError:
                    pass
                self.backoffs += 1
                registry = get_registry()
                if registry is not None:
                    registry.counter("fabric.backoffs").inc()
                if attempt == self.backoff_attempts - 1:
                    raise SpoolError(
                        f"spool still contended after "
                        f"{self.backoff_attempts} attempts: {exc}") from exc
                time.sleep(delay)
                delay = min(delay * 2, self.backoff_cap_s)

    def _check_schema(self, conn) -> None:
        row = conn.execute(
            "SELECT value FROM meta WHERE key='schema'").fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                (str(SCHEMA_VERSION),))
        elif int(row[0]) != SCHEMA_VERSION:
            raise SpoolError(
                f"spool {self.directory} has schema {row[0]}, "
                f"this build expects {SCHEMA_VERSION}")

    def _txn(self, fn):
        """One IMMEDIATE write transaction under backoff."""
        def attempt():
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                value = fn(self._conn)
                self._conn.execute("COMMIT")
                return value
            except BaseException:
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.OperationalError:
                    pass
                raise
        return self._retry(attempt)

    # -- meta ----------------------------------------------------------

    def set_retries(self, retries: int) -> None:
        """Persist the per-job retry budget (attempts = retries + 1) so
        every worker applies the same accounting the broker asked for."""
        def txn(conn):
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('retries', ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (str(int(retries)),))
        self._txn(txn)

    def retries(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='retries'").fetchone()
        return int(row[0]) if row is not None else 2

    # -- broker side ---------------------------------------------------

    def submit(self, jobs: Sequence[Tuple[str, str, Dict]],
               traces: Optional[Dict[str, Dict]] = None
               ) -> Dict[str, int]:
        """Insert jobs (``(key, kind, payload)``) that are not already
        spooled.  Returns ``{"new": .., "done": .., "open": ..}`` where
        ``done``/``open`` count keys that already existed — the resume
        path after a broker restart reuses finished work for free.

        ``traces`` maps job keys to span wire contexts; each is stored
        in the job's ``trace`` column (still-open existing jobs are
        re-stamped, so a restarted tracing broker adopts in-flight
        work into its trace).  Trace context never touches the payload,
        so job keys — and therefore dedup — are tracing-blind.
        """
        traces = traces or {}

        def txn(conn):
            outcome = {"new": 0, "done": 0, "open": 0}
            row = conn.execute("SELECT MAX(seq) FROM jobs").fetchone()
            seq = (row[0] or 0)
            now = time.time()
            for key, kind, payload in jobs:
                trace = traces.get(key)
                trace_text = json.dumps(trace, sort_keys=True) \
                    if trace is not None else None
                existing = conn.execute(
                    "SELECT state FROM jobs WHERE key=?", (key,)).fetchone()
                if existing is not None:
                    if existing[0] == DONE:
                        outcome["done"] += 1
                    else:
                        outcome["open"] += 1
                        if trace_text is not None:
                            conn.execute(
                                "UPDATE jobs SET trace=? WHERE key=?",
                                (trace_text, key))
                    continue
                seq += 1
                conn.execute(
                    "INSERT INTO jobs (key, seq, kind, payload, state, "
                    "trace, created) VALUES (?, ?, ?, ?, 'pending', ?, ?)",
                    (key, seq, kind, json.dumps(payload, sort_keys=True),
                     trace_text, now))
                outcome["new"] += 1
            return outcome
        return self._txn(txn)

    def reap_expired(self) -> int:
        """Return expired leases to the pending pool (broker liveness
        duty; workers can also claim expired leases directly, so the
        fabric makes progress even with no broker watching)."""
        def txn(conn):
            cursor = conn.execute(
                "UPDATE jobs SET state='pending', worker=NULL, "
                "lease_deadline=NULL WHERE state='leased' "
                "AND lease_deadline < ?", (time.time(),))
            return cursor.rowcount
        return self._txn(txn)

    def fail_exhausted(self) -> int:
        """Mark pending jobs that have used their whole attempt budget
        as failed (the fabric's ``_requeue``-gives-up analogue)."""
        max_attempts = self.retries() + 1
        def txn(conn):
            cursor = conn.execute(
                "UPDATE jobs SET state='failed', "
                "error=COALESCE(error, 'no error recorded') "
                "|| ' (gave up after ' || attempts || ' attempts)' "
                "WHERE state='pending' AND attempts >= ?", (max_attempts,))
            return cursor.rowcount
        return self._txn(txn)

    # -- worker side ---------------------------------------------------

    def claim(self, worker: str, lease_s: float) -> Optional[Job]:
        """Lease the oldest claimable job: pending, or leased with an
        expired deadline (the killed-worker reassignment path).  Charges
        one attempt; jobs over budget are marked failed instead."""
        max_attempts = self.retries() + 1

        def txn(conn):
            now = time.time()
            while True:
                row = conn.execute(
                    "SELECT key, seq, kind, payload, state, attempts, "
                    "trace FROM jobs WHERE state='pending' "
                    "OR (state='leased' AND lease_deadline < ?) "
                    "ORDER BY seq LIMIT 1", (now,)).fetchone()
                if row is None:
                    return None
                key, seq, kind, payload, state, attempts, trace = row
                if attempts >= max_attempts:
                    conn.execute(
                        "UPDATE jobs SET state='failed', worker=NULL, "
                        "error=COALESCE(error, 'worker lease expired') "
                        "|| ' (gave up after ' || attempts "
                        "|| ' attempts)' WHERE key=?", (key,))
                    continue
                conn.execute(
                    "UPDATE jobs SET state='leased', worker=?, "
                    "attempts=attempts + 1, lease_deadline=?, "
                    "leased_at=? WHERE key=?",
                    (worker, now + lease_s, now, key))
                return Job(key=key, seq=seq, kind=kind,
                           payload=json.loads(payload), state=LEASED,
                           attempts=attempts + 1, worker=worker,
                           lease_deadline=now + lease_s,
                           reassigned=state == LEASED,
                           trace=json.loads(trace)
                           if trace is not None else None,
                           leased_at=now)
        return self._txn(txn)

    def heartbeat(self, key: str, worker: str, lease_s: float) -> bool:
        """Extend a held lease; False means the lease was lost (the
        job expired and was reassigned, or already completed)."""
        def txn(conn):
            cursor = conn.execute(
                "UPDATE jobs SET lease_deadline=? "
                "WHERE key=? AND worker=? AND state='leased'",
                (time.time() + lease_s, key, worker))
            return cursor.rowcount > 0
        return self._txn(txn)

    def complete(self, key: str, worker: str, result_text: str) -> str:
        """Record a finished job.  First writer wins: returns
        ``"stored"`` for the canonical result, ``"duplicate"`` when
        another worker already finished — in which case the two result
        texts must be byte-identical (:class:`ResultMismatch` otherwise).
        """
        def txn(conn):
            row = conn.execute(
                "SELECT state, result FROM jobs WHERE key=?",
                (key,)).fetchone()
            if row is None:
                raise SpoolError(f"completing unknown job {key!r}")
            state, stored = row
            if state == DONE:
                if stored != result_text:
                    raise ResultMismatch(
                        f"job {key!r}: duplicate result from {worker!r} "
                        f"differs from the stored result — "
                        f"non-deterministic simulation?\n"
                        f"  stored:    {stored[:200]!r}\n"
                        f"  duplicate: {result_text[:200]!r}")
                return "duplicate"
            conn.execute(
                "UPDATE jobs SET state='done', result=?, worker=?, "
                "error=NULL, lease_deadline=NULL, finished=? "
                "WHERE key=?", (result_text, worker, time.time(), key))
            return "stored"
        return self._txn(txn)

    def release(self, key: str, worker: str, error: str) -> bool:
        """Return a failed lease to the pool with its error recorded
        (the attempt stays charged).  No-op if the lease was lost."""
        def txn(conn):
            cursor = conn.execute(
                "UPDATE jobs SET state='pending', worker=NULL, "
                "lease_deadline=NULL, error=? "
                "WHERE key=? AND worker=? AND state='leased'",
                (error, key, worker))
            return cursor.rowcount > 0
        return self._txn(txn)

    def record_worker(self, worker: str, host: str, pid: int,
                      completed: int, duplicates: int,
                      released: int, heartbeat_errors: int = 0) -> None:
        """Upsert one worker's liveness row (its spool-side heartbeat
        plus the counters behind the broker's per-worker gauges and
        ``repro top``)."""
        def txn(conn):
            now = time.time()
            conn.execute(
                "INSERT INTO workers (id, host, pid, started, heartbeat, "
                "completed, duplicates, released, heartbeat_errors) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(id) DO UPDATE SET heartbeat=excluded."
                "heartbeat, completed=excluded.completed, "
                "duplicates=excluded.duplicates, "
                "released=excluded.released, "
                "heartbeat_errors=excluded.heartbeat_errors",
                (worker, host, pid, now, now, completed, duplicates,
                 released, heartbeat_errors))
        self._txn(txn)

    # -- inspection ----------------------------------------------------

    def counts(self, keys: Optional[Iterable[str]] = None
               ) -> Dict[str, int]:
        """Job counts by state, optionally restricted to ``keys``."""
        totals = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0}
        if keys is None:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state")
            for state, count in rows:
                totals[state] = count
            return totals
        keys = list(keys)
        for start in range(0, len(keys), 500):
            chunk = keys[start:start + 500]
            marks = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                f"SELECT state, COUNT(*) FROM jobs WHERE key IN ({marks}) "
                f"GROUP BY state", chunk)
            for state, count in rows:
                totals[state] += count
        return totals

    def job(self, key: str) -> Optional[Job]:
        row = self._conn.execute(
            "SELECT key, seq, kind, payload, state, attempts, worker, "
            "lease_deadline, result, error, trace, leased_at "
            "FROM jobs WHERE key=?", (key,)).fetchone()
        return self._job_from_row(row) if row is not None else None

    def jobs(self, state: Optional[str] = None) -> List[Job]:
        query = ("SELECT key, seq, kind, payload, state, attempts, "
                 "worker, lease_deadline, result, error, trace, "
                 "leased_at FROM jobs")
        params: Tuple = ()
        if state is not None:
            query += " WHERE state=?"
            params = (state,)
        rows = self._conn.execute(query + " ORDER BY seq", params)
        return [self._job_from_row(row) for row in rows]

    def finished_since(self, since: float) -> int:
        """Jobs completed at or after ``since`` (wall clock) — the
        throughput window ``repro top`` renders."""
        row = self._conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE state='done' "
            "AND finished >= ?", (since,)).fetchone()
        return int(row[0])

    def workers(self) -> List[Dict]:
        rows = self._conn.execute(
            "SELECT id, host, pid, started, heartbeat, completed, "
            "duplicates, released, heartbeat_errors "
            "FROM workers ORDER BY id")
        return [dict(zip(("id", "host", "pid", "started", "heartbeat",
                          "completed", "duplicates", "released",
                          "heartbeat_errors"), row))
                for row in rows]

    @staticmethod
    def _job_from_row(row) -> Job:
        (key, seq, kind, payload, state, attempts, worker,
         lease_deadline, result, error, trace, leased_at) = row
        return Job(key=key, seq=seq, kind=kind,
                   payload=json.loads(payload), state=state,
                   attempts=attempts, worker=worker,
                   lease_deadline=lease_deadline, result=result,
                   error=error,
                   trace=json.loads(trace) if trace is not None else None,
                   leased_at=leased_at)
