"""repro.bench.fabric — the distributed campaign fabric.

A broker shards a RunSpec (or fuzzing-campaign) matrix into a durable
spool — one SQLite database plus a directory of per-worker metrics
files, so the fabric works over any shared filesystem with no extra
daemons — and workers (``repro work --spool DIR``) lease jobs with
heartbeats and expiry, execute them with the same engines and caches as
a local run, and write results back for a deterministic merge that is
byte-identical to a serial :func:`repro.bench.executor.run_batch`.
"""

from .spool import (
    DONE,
    FAILED,
    Job,
    LEASED,
    PENDING,
    ResultMismatch,
    Spool,
    SpoolError,
)
from .broker import Broker, run_batch_fabric
from .top import TopView, render, run_top, sample
from .worker import WorkerStats, run_worker, worker_id

__all__ = [
    "Broker", "DONE", "FAILED", "Job", "LEASED", "PENDING",
    "ResultMismatch", "Spool", "SpoolError", "TopView", "WorkerStats",
    "render", "run_batch_fabric", "run_top", "run_worker", "sample",
    "worker_id",
]
