"""The fabric worker: lease jobs, heartbeat, execute, write back.

``repro work --spool DIR`` runs this loop.  A worker is stateless —
everything it knows lives in the spool — so fleets scale by just
starting more of them, on any host that can reach the spool directory
and the shared result cache.

Execution reuses the single-host plumbing end to end: spec jobs run
through :func:`repro.bench.executor._worker_run` (same engines, same
wall-clock alarm, same content-addressed ``benchmarks/.cache/``
writes), fuzzing jobs through the campaign's per-program unit.  A
worker drains gracefully on SIGTERM/SIGINT: it finishes the job it
holds, records its final state, and exits — the lease protocol covers
the impolite shutdowns.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ...metrics.registry import get_registry
from .broker import KIND_FUZZ, KIND_SPEC
from .spool import Job, Spool

logger = logging.getLogger(__name__)

#: How many heartbeats fit in one lease (the slack before a slow
#: heartbeat loses the lease).
HEARTBEATS_PER_LEASE = 3


def worker_id() -> str:
    """Stable-for-the-process worker identity: host + pid."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerStats:
    """What one worker loop did (the ``repro work`` summary line)."""

    worker: str = ""
    claimed: int = 0
    completed: int = 0
    duplicates: int = 0
    released: int = 0
    reassigned: int = 0
    drained: bool = False
    elapsed_s: float = 0.0

    def line(self) -> str:
        return (f"[worker {self.worker}] {self.claimed} claimed: "
                f"{self.completed} completed, {self.duplicates} "
                f"duplicate, {self.released} released "
                f"({self.reassigned} takeovers), "
                f"{self.elapsed_s:.1f}s"
                + (", drained on signal" if self.drained else ""))


class _Heartbeat(threading.Thread):
    """Extends one job's lease while the (blocking) execution runs.

    Uses its own spool connection: SQLite connections are not shared
    across threads, and the main thread is busy simulating.
    """

    def __init__(self, spool_dir, key: str, worker: str,
                 lease_s: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{key[:8]}")
        self.spool_dir = spool_dir
        self.key = key
        self.worker = worker
        self.lease_s = lease_s
        self.interval = max(0.05, lease_s / HEARTBEATS_PER_LEASE)
        self.lost = False
        self._halt = threading.Event()

    def run(self) -> None:
        with Spool(self.spool_dir) as spool:
            while not self._halt.wait(self.interval):
                if not spool.heartbeat(self.key, self.worker,
                                       self.lease_s):
                    # Lease lost (expired and reassigned, or already
                    # completed elsewhere).  Keep simulating: the
                    # dedup protocol decides whose result counts.
                    self.lost = True

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=max(1.0, 2 * self.interval))


class _WorkerAlarm(Exception):
    pass


def _execute_job(job: Job, timeout_s: Optional[float]
                 ) -> Tuple[bool, Optional[str], Optional[str]]:
    """Run one spooled job; returns ``(ok, result_text, error)``.

    Result texts are canonical JSON — the byte-equality the dedup
    protocol asserts is decided here.  SIGALRM only works in the main
    thread, so thread-hosted workers (tests) run without the per-job
    wall-clock limit — the lease deadline still bounds them.
    """
    from ..executor import _worker_run, canonical_json, spec_from_payload

    if threading.current_thread() is not threading.main_thread():
        timeout_s = None
    if job.kind == KIND_SPEC:
        try:
            spec = spec_from_payload(job.payload)
        except (TypeError, ValueError, KeyError) as exc:
            return False, None, f"bad spec payload: {exc}"
        outcome = _worker_run(spec, timeout_s)
        status, payload = outcome[0], outcome[2]
        if status == "ok":
            return True, canonical_json(payload.to_dict()), None
        if status == "timeout":
            return False, None, f"timed out after {timeout_s}s"
        return False, None, str(payload)
    if job.kind == KIND_FUZZ:
        from ...fuzzing.campaign import run_campaign_job

        use_alarm = bool(timeout_s) and hasattr(signal, "SIGALRM")
        if use_alarm:
            def _on_alarm(signum, frame):
                raise _WorkerAlarm()
            previous = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        try:
            return True, canonical_json(run_campaign_job(job.payload)), \
                None
        except _WorkerAlarm:
            return False, None, f"timed out after {timeout_s}s"
        except Exception as exc:  # noqa: BLE001 — report, spool decides
            return False, None, f"{type(exc).__name__}: {exc}"
        finally:
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0)
                signal.signal(signal.SIGALRM, previous)
    return False, None, f"unknown job kind {job.kind!r}"


def run_worker(spool_dir, *, lease_s: float = 30.0, poll_s: float = 0.5,
               idle_timeout_s: Optional[float] = None,
               max_jobs: Optional[int] = None,
               job_timeout_s: Optional[float] = None,
               name: Optional[str] = None) -> WorkerStats:
    """The worker loop: claim → heartbeat → execute → complete/release.

    Exits when a drain signal arrives (SIGTERM/SIGINT, finishing the
    current job first), after ``max_jobs`` claims, or after
    ``idle_timeout_s`` seconds with nothing claimable.  With an
    attached metrics registry, per-job counters accumulate and a
    Prometheus textfile lands in ``SPOOL/metrics/<worker>.prom`` after
    every job (the node-exporter textfile-collector handoff).
    """
    from ..executor import DEFAULT_TIMEOUT_S

    if job_timeout_s is None:
        job_timeout_s = DEFAULT_TIMEOUT_S
    stats = WorkerStats(worker=name or worker_id())
    drain = threading.Event()
    previous_handlers = {}
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            logger.info("worker %s: drain requested (signal %d)",
                        stats.worker, signum)
            drain.set()
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _on_signal)
    registry = get_registry()
    started = time.monotonic()
    host, pid = socket.gethostname(), os.getpid()
    try:
        with Spool(spool_dir) as spool:
            idle_since = time.monotonic()
            while not drain.is_set():
                if max_jobs is not None and stats.claimed >= max_jobs:
                    break
                job = spool.claim(stats.worker, lease_s)
                if job is None:
                    spool.record_worker(stats.worker, host, pid,
                                        stats.completed,
                                        stats.duplicates, stats.released)
                    if (idle_timeout_s is not None
                            and time.monotonic() - idle_since
                            > idle_timeout_s):
                        break
                    drain.wait(poll_s)
                    continue
                idle_since = time.monotonic()
                stats.claimed += 1
                if job.reassigned:
                    stats.reassigned += 1
                    logger.warning(
                        "worker %s: taking over expired lease on %s "
                        "(attempt %d)", stats.worker, job.key[:12],
                        job.attempts)
                heartbeat = _Heartbeat(spool_dir, job.key, stats.worker,
                                       lease_s)
                heartbeat.start()
                job_started = time.monotonic()
                try:
                    ok, result_text, error = _execute_job(job,
                                                          job_timeout_s)
                finally:
                    heartbeat.stop()
                if ok:
                    outcome = spool.complete(job.key, stats.worker,
                                             result_text)
                    if outcome == "duplicate":
                        stats.duplicates += 1
                    else:
                        stats.completed += 1
                else:
                    spool.release(job.key, stats.worker, error)
                    stats.released += 1
                    logger.warning("worker %s: released %s: %s",
                                   stats.worker, job.key[:12], error)
                if registry is not None:
                    counter = registry.counter
                    counter("fabric.worker_claims").inc()
                    if ok:
                        counter("fabric.worker_completed").inc()
                    else:
                        counter("fabric.worker_releases").inc()
                    registry.timer("fabric.job_seconds").observe(
                        time.monotonic() - job_started)
                spool.record_worker(stats.worker, host, pid,
                                    stats.completed, stats.duplicates,
                                    stats.released)
                _write_worker_metrics(spool, stats.worker, registry)
            stats.drained = drain.is_set()
            spool.record_worker(stats.worker, host, pid, stats.completed,
                                stats.duplicates, stats.released)
            _write_worker_metrics(spool, stats.worker, registry)
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    stats.elapsed_s = time.monotonic() - started
    logger.info("%s", stats.line())
    return stats


def _write_worker_metrics(spool: Spool, worker: str, registry) -> None:
    """Drop this worker's registry snapshot as a Prometheus textfile
    under ``SPOOL/metrics/`` (best effort: metrics never fail work)."""
    if registry is None:
        return
    try:
        path = spool.metrics_dir / f"{worker}.prom"
        path.write_text(registry.to_prometheus())
    except OSError:
        pass
