"""The fabric worker: lease jobs, heartbeat, execute, write back.

``repro work --spool DIR`` runs this loop.  A worker is stateless —
everything it knows lives in the spool — so fleets scale by just
starting more of them, on any host that can reach the spool directory
and the shared result cache.

Execution reuses the single-host plumbing end to end: spec jobs run
through :func:`repro.bench.executor._worker_run` (same engines, same
wall-clock alarm, same content-addressed ``benchmarks/.cache/``
writes), fuzzing jobs through the campaign's per-program unit.  A
worker drains gracefully on SIGTERM/SIGINT: it finishes the job it
holds, records its final state, and exits — the lease protocol covers
the impolite shutdowns.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ...metrics.registry import get_registry
from ...metrics.spans import SpanRecorder, recording
from .broker import KIND_FUZZ, KIND_SPEC
from .spool import Job, Spool

logger = logging.getLogger(__name__)

#: How many heartbeats fit in one lease (the slack before a slow
#: heartbeat loses the lease).
HEARTBEATS_PER_LEASE = 3


def worker_id() -> str:
    """Stable-for-the-process worker identity: host + pid."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class WorkerStats:
    """What one worker loop did (the ``repro work`` summary line)."""

    worker: str = ""
    claimed: int = 0
    completed: int = 0
    duplicates: int = 0
    released: int = 0
    reassigned: int = 0
    heartbeat_errors: int = 0
    drained: bool = False
    elapsed_s: float = 0.0

    def line(self) -> str:
        return (f"[worker {self.worker}] {self.claimed} claimed: "
                f"{self.completed} completed, {self.duplicates} "
                f"duplicate, {self.released} released "
                f"({self.reassigned} takeovers), "
                f"{self.elapsed_s:.1f}s"
                + (f", {self.heartbeat_errors} heartbeat errors"
                   if self.heartbeat_errors else "")
                + (", drained on signal" if self.drained else ""))


class _Heartbeat(threading.Thread):
    """Extends one job's lease while the (blocking) execution runs.

    Uses its own spool connection: SQLite connections are not shared
    across threads, and the main thread is busy simulating.  Beat
    failures (a contended or briefly unreachable spool) are caught,
    logged, and counted in :attr:`errors` — a wedged heartbeat must
    surface as ``fabric.heartbeat_errors`` in ``repro top``, not as a
    mystery lease expiry — and never kill the thread, which keeps
    trying until the job finishes.

    When the job carries trace context, each beat is recorded as a
    ``fabric.heartbeat`` span in the thread's *own*
    :class:`SpanRecorder` (recorders are not thread-safe), parented
    explicitly under the worker's job span and merged back after
    :meth:`stop`.
    """

    def __init__(self, spool_dir, key: str, worker: str,
                 lease_s: float, trace_parent=None) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{key[:8]}")
        self.spool_dir = spool_dir
        self.key = key
        self.worker = worker
        self.lease_s = lease_s
        self.interval = max(0.05, lease_s / HEARTBEATS_PER_LEASE)
        self.lost = False
        self.errors = 0
        self.trace_parent = trace_parent
        self.recorder = SpanRecorder(process=worker) \
            if trace_parent is not None else None
        self._halt = threading.Event()

    def run(self) -> None:
        try:
            with Spool(self.spool_dir) as spool:
                while not self._halt.wait(self.interval):
                    self._beat(spool)
        except Exception as exc:  # noqa: BLE001 — count, never raise
            self._count_error(exc)

    def _beat(self, spool: Spool) -> None:
        beat_started = self.recorder.now() \
            if self.recorder is not None else 0.0
        try:
            alive = spool.heartbeat(self.key, self.worker, self.lease_s)
        except Exception as exc:  # noqa: BLE001 — count, keep beating
            self._count_error(exc)
            return
        if self.recorder is not None:
            self.recorder.add("fabric.heartbeat", beat_started,
                              self.recorder.now(),
                              parent=self.trace_parent,
                              attrs={"alive": alive})
        if not alive:
            # Lease lost (expired and reassigned, or already completed
            # elsewhere).  Keep simulating: the dedup protocol decides
            # whose result counts.
            self.lost = True

    def _count_error(self, exc: BaseException) -> None:
        self.errors += 1
        logger.warning("worker %s: heartbeat for %s failed: %s",
                       self.worker, self.key[:12], exc)
        registry = get_registry()
        if registry is not None:
            registry.counter("fabric.heartbeat_errors").inc()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=max(1.0, 2 * self.interval))


class _WorkerAlarm(Exception):
    pass


def _execute_job(job: Job, timeout_s: Optional[float]
                 ) -> Tuple[bool, Optional[str], Optional[str]]:
    """Run one spooled job; returns ``(ok, result_text, error)``.

    Result texts are canonical JSON — the byte-equality the dedup
    protocol asserts is decided here.  SIGALRM only works in the main
    thread, so thread-hosted workers (tests) run without the per-job
    wall-clock limit — the lease deadline still bounds them.
    """
    from ..executor import _worker_run, canonical_json, spec_from_payload

    if threading.current_thread() is not threading.main_thread():
        timeout_s = None
    if job.kind == KIND_SPEC:
        try:
            spec = spec_from_payload(job.payload)
        except (TypeError, ValueError, KeyError) as exc:
            return False, None, f"bad spec payload: {exc}"
        outcome = _worker_run(spec, timeout_s)
        status, payload = outcome[0], outcome[2]
        if status == "ok":
            return True, canonical_json(payload.to_dict()), None
        if status == "timeout":
            return False, None, f"timed out after {timeout_s}s"
        return False, None, str(payload)
    if job.kind == KIND_FUZZ:
        from ...fuzzing.campaign import run_campaign_job

        use_alarm = bool(timeout_s) and hasattr(signal, "SIGALRM")
        if use_alarm:
            def _on_alarm(signum, frame):
                raise _WorkerAlarm()
            previous = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        try:
            return True, canonical_json(run_campaign_job(job.payload)), \
                None
        except _WorkerAlarm:
            return False, None, f"timed out after {timeout_s}s"
        except Exception as exc:  # noqa: BLE001 — report, spool decides
            return False, None, f"{type(exc).__name__}: {exc}"
        finally:
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0)
                signal.signal(signal.SIGALRM, previous)
    return False, None, f"unknown job kind {job.kind!r}"


def run_worker(spool_dir, *, lease_s: float = 30.0, poll_s: float = 0.5,
               idle_timeout_s: Optional[float] = None,
               max_jobs: Optional[int] = None,
               job_timeout_s: Optional[float] = None,
               name: Optional[str] = None) -> WorkerStats:
    """The worker loop: claim → heartbeat → execute → complete/release.

    Exits when a drain signal arrives (SIGTERM/SIGINT, finishing the
    current job first), after ``max_jobs`` claims, or after
    ``idle_timeout_s`` seconds with nothing claimable.  With an
    attached metrics registry, per-job counters accumulate and a
    Prometheus textfile lands in ``SPOOL/metrics/<worker>.prom`` after
    every job (the node-exporter textfile-collector handoff).

    Tracing is driven entirely by the jobs: a job whose spool row
    carries trace context gets ``fabric.lease`` / ``fabric.job`` /
    ``fabric.heartbeat`` / ``fabric.result-write`` spans parented
    under the submitting side's span, appended to
    ``SPOOL/metrics/spans-<worker>.jsonl`` after the job; untraced
    jobs run with no tracing machinery at all.
    """
    from ..executor import DEFAULT_TIMEOUT_S

    if job_timeout_s is None:
        job_timeout_s = DEFAULT_TIMEOUT_S
    stats = WorkerStats(worker=name or worker_id())
    drain = threading.Event()
    previous_handlers = {}
    if threading.current_thread() is threading.main_thread():
        def _on_signal(signum, frame):
            logger.info("worker %s: drain requested (signal %d)",
                        stats.worker, signum)
            drain.set()
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _on_signal)
    registry = get_registry()
    recorder: Optional[SpanRecorder] = None
    started = time.monotonic()
    host, pid = socket.gethostname(), os.getpid()
    try:
        with Spool(spool_dir) as spool:
            idle_since = time.monotonic()
            while not drain.is_set():
                if max_jobs is not None and stats.claimed >= max_jobs:
                    break
                claim_started = time.time()
                job = spool.claim(stats.worker, lease_s)
                if job is None:
                    spool.record_worker(stats.worker, host, pid,
                                        stats.completed,
                                        stats.duplicates, stats.released,
                                        stats.heartbeat_errors)
                    if (idle_timeout_s is not None
                            and time.monotonic() - idle_since
                            > idle_timeout_s):
                        break
                    drain.wait(poll_s)
                    continue
                idle_since = time.monotonic()
                stats.claimed += 1
                if job.reassigned:
                    stats.reassigned += 1
                    logger.warning(
                        "worker %s: taking over expired lease on %s "
                        "(attempt %d)", stats.worker, job.key[:12],
                        job.attempts)
                job_span = None
                if job.trace is not None:
                    # Tracing is job-driven: the first traced job
                    # creates this worker's recorder.
                    if recorder is None:
                        recorder = SpanRecorder(process=stats.worker)
                    recorder.add(
                        "fabric.lease", claim_started, recorder.now(),
                        parent=job.trace,
                        attrs={"worker": stats.worker,
                               "attempt": job.attempts,
                               "reassigned": job.reassigned,
                               "key": job.key[:12]})
                    job_span = recorder.start(
                        "fabric.job", parent=job.trace,
                        attrs={"worker": stats.worker, "kind": job.kind,
                               "attempt": job.attempts,
                               "key": job.key[:12]},
                        push=True)
                heartbeat = _Heartbeat(
                    spool_dir, job.key, stats.worker, lease_s,
                    trace_parent=job_span.context()
                    if job_span is not None else None)
                heartbeat.start()
                job_started = time.monotonic()
                try:
                    if job_span is not None:
                        with recording(recorder):
                            ok, result_text, error = _execute_job(
                                job, job_timeout_s)
                    else:
                        ok, result_text, error = _execute_job(
                            job, job_timeout_s)
                finally:
                    heartbeat.stop()
                    stats.heartbeat_errors += heartbeat.errors
                write_started = recorder.now() if job_span is not None \
                    else 0.0
                if ok:
                    outcome = spool.complete(job.key, stats.worker,
                                             result_text)
                    if outcome == "duplicate":
                        stats.duplicates += 1
                    else:
                        stats.completed += 1
                else:
                    outcome = "released"
                    spool.release(job.key, stats.worker, error)
                    stats.released += 1
                    logger.warning("worker %s: released %s: %s",
                                   stats.worker, job.key[:12], error)
                if job_span is not None:
                    recorder.add("fabric.result-write", write_started,
                                 recorder.now(), parent=job_span,
                                 attrs={"outcome": outcome})
                    recorder.finish(job_span, outcome=outcome,
                                    heartbeat_errors=heartbeat.errors)
                    if heartbeat.recorder is not None:
                        recorder.spans.extend(heartbeat.recorder.spans)
                    recorder.write_shard(spool.metrics_dir)
                if registry is not None:
                    counter = registry.counter
                    counter("fabric.worker_claims").inc()
                    if ok:
                        counter("fabric.worker_completed").inc()
                    else:
                        counter("fabric.worker_releases").inc()
                    registry.timer("fabric.job_seconds").observe(
                        time.monotonic() - job_started)
                spool.record_worker(stats.worker, host, pid,
                                    stats.completed, stats.duplicates,
                                    stats.released,
                                    stats.heartbeat_errors)
                _write_worker_metrics(spool, stats.worker, registry)
            stats.drained = drain.is_set()
            spool.record_worker(stats.worker, host, pid, stats.completed,
                                stats.duplicates, stats.released,
                                stats.heartbeat_errors)
            _write_worker_metrics(spool, stats.worker, registry)
            if recorder is not None:
                recorder.write_shard(spool.metrics_dir)
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    stats.elapsed_s = time.monotonic() - started
    logger.info("%s", stats.line())
    return stats


def _write_worker_metrics(spool: Spool, worker: str, registry) -> None:
    """Drop this worker's registry snapshot as a Prometheus textfile
    under ``SPOOL/metrics/`` (best effort: metrics never fail work)."""
    if registry is None:
        return
    try:
        path = spool.metrics_dir / f"{worker}.prom"
        path.write_text(registry.to_prometheus())
    except OSError:
        pass
