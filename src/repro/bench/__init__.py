"""repro.bench — the experiment harness: cached runs, normalized
runtimes, and builders for every table and figure in the paper."""

from .runner import (
    CLASS_BASELINE,
    DEFENSES,
    RunSpec,
    baseline_norm,
    clear_caches,
    compiled,
    execute_spec,
    geomean,
    norm_runtime,
    protean_norm,
    render_table,
    run,
)
from .executor import (
    BatchStats,
    ExecutorError,
    RunSummary,
    cache_info,
    resolve_jobs,
    run_batch,
    run_summary,
    wipe_cache,
)
from .tables import (
    ARCH_WASM,
    CT_CRYPTO,
    CTS_CRYPTO,
    NGINX,
    PARSEC,
    SPEC,
    MITIGATION_SCHEMES,
    SPEC_INT_FAST,
    TableResult,
    UNR_CRYPTO,
    figure_5,
    figure_6,
    mitigation_table,
    overhead_attribution,
    speculation_anatomy,
    table_i,
    table_ii,
    table_iv,
    table_v,
)
from .report import (
    compare_reports,
    format_run_stats,
    load_report,
    table_to_dict,
    write_report,
)
from .fabric import (
    Broker,
    Spool,
    WorkerStats,
    run_worker,
)
from .ablations import (
    access_mechanisms,
    bugfix_overhead,
    control_model,
    l1d_tag_variants,
    protcc_overhead,
)

__all__ = [
    "CLASS_BASELINE", "DEFENSES", "RunSpec", "baseline_norm",
    "clear_caches", "compiled", "execute_spec", "geomean", "norm_runtime",
    "protean_norm", "render_table", "run",
    "BatchStats", "ExecutorError", "RunSummary", "cache_info",
    "resolve_jobs", "run_batch", "run_summary", "wipe_cache",
    "ARCH_WASM", "CT_CRYPTO", "CTS_CRYPTO", "NGINX", "PARSEC", "SPEC",
    "MITIGATION_SCHEMES", "SPEC_INT_FAST", "TableResult", "UNR_CRYPTO",
    "figure_5", "figure_6", "mitigation_table", "overhead_attribution",
    "speculation_anatomy", "table_i", "table_ii", "table_iv", "table_v",
    "access_mechanisms", "bugfix_overhead", "control_model",
    "l1d_tag_variants", "protcc_overhead",
    "compare_reports", "format_run_stats", "load_report", "table_to_dict",
    "write_report",
    "Broker", "Spool", "WorkerStats", "run_worker",
]
