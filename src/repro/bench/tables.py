"""Builders for every results table and figure in the paper.

Each function runs the experiments it needs (through the cached runner)
and returns a :class:`TableResult` holding both structured data and a
rendered ASCII rendition of the paper's table/figure.  The benchmark
suite under ``benchmarks/`` prints these and asserts the paper's
qualitative claims on the structured data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..contracts import Contract
from ..fuzzing import CampaignConfig, run_campaign
from .executor import RunSummary, run_batch
from .runner import (
    CLASS_BASELINE,
    CORES,
    DEFENSES,
    RunSpec,
    geomean,
    render_table,
)

#: SPEC2017-like suite used for the general-purpose experiments
#: (int + fp, mirroring the paper's Fig. 6 benchmark set).
SPEC = tuple(sorted([
    "perlbench.s", "gcc.s", "mcf.s", "omnetpp.s", "xalancbmk.s", "x264.s",
    "deepsjeng.s", "leela.s", "exchange2.s", "xz.s",
    "bwaves.s", "cactuBSSN.s", "fotonik3d.s", "lbm.s", "nab.s", "pop2.s",
    "wrf.s",
]))
PARSEC = tuple(sorted([
    "blackscholes.p", "canneal.p", "dedup.p", "ferret.p",
    "fluidanimate.p", "swaptions.p",
]))
ARCH_WASM = tuple(sorted([
    "bzip2.w", "mcf.w", "milc.w", "namd.w", "libquantum.w", "lbm.w",
]))
CTS_CRYPTO = tuple(sorted([
    "hacl.chacha20", "hacl.curve25519", "hacl.poly1305",
    "sodium.salsa20", "sodium.sha256",
    "ossl.chacha20", "ossl.curve25519", "ossl.sha256",
]))
CT_CRYPTO = ("bearssl", "ctaes", "djbsort")
UNR_CRYPTO = ("ossl.bnexp", "ossl.dh", "ossl.ecadd")
NGINX = ("nginx.c1r1", "nginx.c2r2", "nginx.c1r4", "nginx.c4r1",
         "nginx.c4r4")

#: A faster subset for the sweep-style experiments (Fig. 5, ablations).
SPEC_INT_FAST = ("perlbench.s", "mcf.s", "xalancbmk.s", "omnetpp.s",
                 "xz.s", "deepsjeng.s")


@dataclass
class TableResult:
    """Structured data plus rendered text for one table/figure."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    data: Dict = field(default_factory=dict)

    def render(self) -> str:
        return render_table(self.name, self.headers, self.rows)


# ----------------------------------------------------------------------
# Batch plumbing: every builder declares its full RunSpec matrix up
# front and resolves it in one run_batch() call, so the whole grid fans
# out over worker processes (and the persistent cache) at once.
# ----------------------------------------------------------------------

def _spec(workload: str, defense: str = "unsafe",
          instrument: Optional[str] = None, core: str = "P",
          **knobs) -> RunSpec:
    return RunSpec(workload=workload, defense=defense,
                   instrument=instrument, core=core, **knobs)


def _norm(summaries: Dict[RunSpec, RunSummary], workload: str,
          defense: str, instrument: Optional[str] = None,
          core: str = "P", **knobs) -> float:
    """``norm_runtime`` over pre-resolved batch summaries."""
    base = summaries[_spec(workload, core=core)]
    this = summaries[_spec(workload, defense, instrument, core, **knobs)]
    return this.cycles / base.cycles


# ======================================================================
# Tab. IV — geomean normalized runtimes for all eight Protean configs
# ======================================================================

def table_iv(cores: Tuple[str, ...] = ("P", "E"),
             include_parsec: bool = True,
             jobs: Optional[int] = None) -> TableResult:
    rows: List[List[object]] = []
    data: Dict = {}
    suites: List[Tuple[str, Tuple[str, ...], str]] = []
    for core in cores:
        suites.append((f"SPEC2017 {core}-core", SPEC, core))
    if include_parsec:
        suites.append(("PARSEC", PARSEC, "P"))

    specs: List[RunSpec] = []
    for clazz in ("arch", "cts", "ct", "unr"):
        baseline = CLASS_BASELINE[clazz]
        for _, names, core in suites:
            for n in names:
                specs.append(_spec(n, core=core))
                specs.append(_spec(n, baseline, core=core))
                specs.append(_spec(n, "delay", clazz, core))
                specs.append(_spec(n, "track", clazz, core))
    summaries = run_batch(specs, jobs=jobs)

    for clazz in ("arch", "cts", "ct", "unr"):
        baseline = CLASS_BASELINE[clazz]
        for label, names, core in suites:
            base = geomean(_norm(summaries, n, baseline, core=core)
                           for n in names)
            delay = geomean(_norm(summaries, n, "delay", clazz, core)
                            for n in names)
            track = geomean(_norm(summaries, n, "track", clazz, core)
                            for n in names)
            rows.append([clazz.upper(), label, baseline.upper(), base,
                         delay, track])
            data[(clazz, label)] = {"baseline": base, "delay": delay,
                                    "track": track}
    return TableResult(
        "Table IV: geomean normalized runtime (baseline vs Protean)",
        ["class", "suite", "baseline", "baseline_x", "Delay", "Track"],
        rows, data)


# ======================================================================
# Tab. V — single-class suites and multi-class nginx
# ======================================================================

def table_v(include: Tuple[str, ...] = ("arch-wasm", "cts-crypto",
                                        "ct-crypto", "unr-crypto", "nginx"),
            jobs: Optional[int] = None) -> TableResult:
    suites = {
        "arch-wasm": (ARCH_WASM, "stt"),
        "cts-crypto": (CTS_CRYPTO, "spt"),
        "ct-crypto": (CT_CRYPTO, "spt"),
        "unr-crypto": (UNR_CRYPTO, "spt-sb"),
        "nginx": (NGINX, "spt-sb"),
    }
    specs: List[RunSpec] = []
    for suite in include:
        names, baseline = suites[suite]
        for name in names:
            specs.append(_spec(name))
            specs.append(_spec(name, baseline))
            specs.append(_spec(name, "delay", "auto"))
            specs.append(_spec(name, "track", "auto"))
    summaries = run_batch(specs, jobs=jobs)

    rows: List[List[object]] = []
    data: Dict = {}
    for suite in include:
        names, baseline = suites[suite]
        base_values, delay_values, track_values = [], [], []
        for name in names:
            base = _norm(summaries, name, baseline)
            delay = _norm(summaries, name, "delay", "auto")
            track = _norm(summaries, name, "track", "auto")
            rows.append([suite, name, baseline.upper(), base, delay, track])
            base_values.append(base)
            delay_values.append(delay)
            track_values.append(track)
            data[name] = {"baseline": base, "delay": delay, "track": track}
        rows.append([suite, "geomean", baseline.upper(),
                     geomean(base_values), geomean(delay_values),
                     geomean(track_values)])
        data[f"{suite}:geomean"] = {
            "baseline": geomean(base_values),
            "delay": geomean(delay_values),
            "track": geomean(track_values),
        }
    return TableResult(
        "Table V: normalized runtime on single-class and multi-class "
        "workloads (P-core)",
        ["suite", "benchmark", "baseline", "baseline_x", "Delay", "Track"],
        rows, data)


# ======================================================================
# Tab. I — overhead summary per vulnerable-code class
# ======================================================================

def table_i(jobs: Optional[int] = None) -> TableResult:
    """Percent overheads of the best baseline vs Protean per class
    (derived from the Tab. V suites, as the paper's Tab. I derives from
    its Tab. V)."""
    spec_v = table_v(jobs=jobs)
    data = spec_v.data

    def pct(value: float) -> str:
        return f"{100 * (value - 1):.0f}%"

    rows = []
    mapping = [
        ("ARCH", "arch-wasm:geomean", "STT"),
        ("CTS", "cts-crypto:geomean", "SPT"),
        ("CT", "ct-crypto:geomean", "SPT"),
        ("UNR", "unr-crypto:geomean", "SPT-SB"),
        ("multi (nginx)", "nginx:geomean", "SPT-SB"),
    ]
    structured = {}
    for label, key, baseline in mapping:
        entry = data[key]
        rows.append([label, baseline, pct(entry["baseline"]),
                     pct(entry["delay"]), pct(entry["track"])])
        structured[label] = entry
    return TableResult(
        "Table I: runtime overheads of the most performant applicable "
        "defense per class",
        ["class", "baseline", "baseline_ovh", "ProtDelay_ovh",
         "ProtTrack_ovh"],
        rows, {"classes": structured})


# ======================================================================
# Fig. 6 — per-benchmark normalized runtimes
# ======================================================================

def figure_6(names: Optional[Tuple[str, ...]] = None,
             jobs: Optional[int] = None) -> TableResult:
    if names is None:
        names = SPEC + PARSEC
    specs: List[RunSpec] = []
    for name in names:
        specs.append(_spec(name))
        specs.append(_spec(name, "stt"))
        specs.append(_spec(name, "spt"))
        specs.append(_spec(name, "track", "arch"))
        specs.append(_spec(name, "track", "ct"))
    summaries = run_batch(specs, jobs=jobs)

    rows = []
    data = {}
    for name in names:
        stt = _norm(summaries, name, "stt")
        spt = _norm(summaries, name, "spt")
        track_arch = _norm(summaries, name, "track", "arch")
        track_ct = _norm(summaries, name, "track", "ct")
        rows.append([name, stt, track_arch, spt, track_ct])
        data[name] = {"stt": stt, "track_arch": track_arch, "spt": spt,
                      "track_ct": track_ct}
    return TableResult(
        "Figure 6: per-benchmark normalized runtime "
        "(Protean-Track-ARCH/-CT vs STT/SPT)",
        ["benchmark", "STT", "Track-ARCH", "SPT", "Track-CT"],
        rows, data)


# ======================================================================
# Fig. 5 — access-predictor sensitivity
# ======================================================================

def figure_5(entry_sweep: Tuple = (2, 4, 16, 256, 1024, "inf"),
             names: Tuple[str, ...] = SPEC_INT_FAST,
             jobs: Optional[int] = None) -> TableResult:
    specs: List[RunSpec] = [_spec(name) for name in names]
    for entries in entry_sweep:
        for name in names:
            for clazz in ("arch", "ct"):
                specs.append(_spec(name, "track", clazz,
                                   predictor_entries=entries))
    summaries = run_batch(specs, jobs=jobs)

    rows = []
    data = {}
    for entries in entry_sweep:
        overheads = []
        predictions = 0
        mispredictions = 0
        for name in names:
            for clazz in ("arch", "ct"):
                result = summaries[_spec(name, "track", clazz,
                                         predictor_entries=entries)]
                base = summaries[_spec(name)]
                overheads.append(result.cycles / base.cycles)
                stats = result.stat
                predictions += stats.get("defense_predictions", 0)
                mispredictions += stats.get("defense_mispredictions", 0)
        rate = mispredictions / predictions if predictions else 0.0
        overhead = geomean(overheads)
        rows.append([str(entries), f"{100 * rate:.2f}%", overhead])
        data[entries] = {"mispredict_rate": rate, "overhead": overhead}
    return TableResult(
        "Figure 5: ProtTrack access-predictor sensitivity "
        "(SPEC-like, ProtCC-ARCH/-CT, P-core)",
        ["entries", "mispredict_rate", "norm_runtime"],
        rows, data)


# ======================================================================
# Overhead attribution — where each defense's cycles go
# ======================================================================

#: Stall causes grouped into the report's attribution columns.
ATTRIBUTION_GROUPS = (
    ("frontend", ("frontend", "fetch_redirect")),
    ("backend", ("rob_full", "iq_full", "lsq_full", "prf_starved",
                 "dependency", "issue_bw", "exec_latency",
                 "mem_disambiguation", "drain", "no_progress")),
    ("cache_miss", ("cache_miss",)),
    ("div_busy", ("div_busy",)),
    ("def_transmit", ("defense_transmitter",)),
    ("def_wakeup", ("defense_wakeup",)),
    ("def_resolve", ("defense_resolution", "squash_notify")),
)

#: Defenses the attribution table compares (harness name -> instrument).
ATTRIBUTION_DEFENSES = (
    ("unsafe", None),
    ("nda", None),
    ("stt", None),
    ("spt", None),
    ("spt-sb", None),
    ("delay", "auto"),
    ("track", "auto"),
)


def overhead_attribution(names: Tuple[str, ...] = SPEC_INT_FAST,
                         jobs: Optional[int] = None) -> TableResult:
    """Per-defense stall-cause attribution: for each defense, the share
    of total issue slots (``width * cycles``) lost to each stall-cause
    group, plus the geomean normalized runtime it explains.  This is the
    table that says *why* a defense's overhead moved."""
    specs = [_spec(n, defense, instrument)
             for defense, instrument in ATTRIBUTION_DEFENSES
             for n in names]
    summaries = run_batch(specs, jobs=jobs)
    width = CORES["P"].width

    rows: List[List[object]] = []
    data: Dict = {}
    for defense, instrument in ATTRIBUTION_DEFENSES:
        slots = 0
        committed = 0
        totals = {label: 0 for label, _ in ATTRIBUTION_GROUPS}
        norms = []
        for n in names:
            summary = summaries[_spec(n, defense, instrument)]
            stats = summary.stat
            slots += width * summary.cycles
            committed += stats.get("committed_uops", 0)
            for label, causes in ATTRIBUTION_GROUPS:
                totals[label] += sum(stats.get(f"stall_{c}", 0)
                                     for c in causes)
            norms.append(_norm(summaries, n, defense, instrument))
        shares = {label: totals[label] / slots if slots else 0.0
                  for label, _ in ATTRIBUTION_GROUPS}
        shares["commit"] = committed / slots if slots else 0.0
        norm = geomean(norms)
        rows.append([defense, norm, f"{100 * shares['commit']:.1f}%"]
                    + [f"{100 * shares[label]:.1f}%"
                       for label, _ in ATTRIBUTION_GROUPS])
        data[defense] = {"norm_runtime": norm, "shares": shares}
    return TableResult(
        "Overhead attribution: share of issue slots per stall cause "
        "(SPEC-like subset, P-core)",
        ["defense", "norm_runtime", "commit"]
        + [label for label, _ in ATTRIBUTION_GROUPS],
        rows, data)


def speculation_anatomy(names: Tuple[str, ...] = SPEC_INT_FAST,
                        defenses=ATTRIBUTION_DEFENSES,
                        jobs: Optional[int] = None,
                        core: str = "P") -> TableResult:
    """Per-defense overhead anatomy: which gating hook intervened, on
    how many uops, for how many cycles — the episode-level view that
    explains the coarse ``def_*`` stall shares of
    :func:`overhead_attribution` — plus transient-uop pressure
    (fetched-but-never-committed share)."""
    from ..uarch.speculation import intervention_summary, transient_summary

    specs = [_spec(n, defense, instrument, core)
             for defense, instrument in defenses
             for n in names]
    specs += [_spec(n, core=core) for n in names]  # baselines for norm
    summaries = run_batch(specs, jobs=jobs)

    rows: List[List[object]] = []
    data: Dict = {}
    for defense, instrument in defenses:
        totals: Dict[str, float] = {}
        norms = []
        for n in names:
            summary = summaries[_spec(n, defense, instrument, core)]
            for key, value in summary.stat.items():
                totals[key] = totals.get(key, 0) + value
            norms.append(_norm(summaries, n, defense, instrument, core))
        hooks = intervention_summary(totals)
        transient = transient_summary(totals)
        fetched = transient["fetched_uops"]
        transient_share = (transient["transient_uops"] / fetched
                           if fetched else 0.0)
        row = [defense, geomean(norms), f"{100 * transient_share:.1f}%"]
        for hook in ("execute", "resolve", "wakeup"):
            row.append(hooks[hook]["interventions"])
            row.append(hooks[hook]["delay_cycles"])
        rows.append(row)
        data[defense] = {
            "norm_runtime": geomean(norms),
            "transient_share": transient_share,
            "transient": transient,
            "hooks": hooks,
        }
    return TableResult(
        "Overhead anatomy: defense interventions per gating hook "
        f"(episodes / delay cycles; SPEC-like subset, {core}-core)",
        ["defense", "norm_runtime", "transient",
         "exec_n", "exec_cyc", "resolve_n", "resolve_cyc",
         "wakeup_n", "wakeup_cyc"],
        rows, data)


# ======================================================================
# Mitigations — software passes vs hardware defenses
# ======================================================================

#: Schemes the mitigation table compares.  SW rows run the mitigated
#: binary on the *unsafe* core (the mitigation pays the whole security
#: bill); HW rows run the base binary under a hardware defense.
MITIGATION_SCHEMES: Tuple[Tuple[str, str], ...] = (
    ("fence", "SW"),
    ("slh", "SW"),
    ("mask", "SW"),
    ("blade", "SW"),
    ("stt", "HW"),
    ("spt", "HW"),
    ("spt-sb", "HW"),
)


def mitigation_table(names: Tuple[str, ...] = SPEC_INT_FAST,
                     jobs: Optional[int] = None) -> TableResult:
    """Software Spectre mitigations (compiled into the binary, run on
    the unsafe core) against the hardware defenses they approximate:
    per-workload normalized runtime, geomean, the observatory's
    transient-uop share (software fences collapse it; hardware defenses
    leave it intact and gate transmitters instead), and static
    code-size overhead for the software rows."""
    from ..protcc import mitigate_program
    from ..uarch.speculation import transient_summary
    from ..workloads import get_workload

    specs: List[RunSpec] = [_spec(n) for n in names]
    for scheme, kind in MITIGATION_SCHEMES:
        for n in names:
            if kind == "SW":
                specs.append(_spec(n, mitigation=scheme))
            else:
                specs.append(_spec(n, scheme))
    summaries = run_batch(specs, jobs=jobs)

    rows: List[List[object]] = []
    data: Dict = {}
    for scheme, kind in MITIGATION_SCHEMES:
        knobs = {"mitigation": scheme} if kind == "SW" else {}
        defense = "unsafe" if kind == "SW" else scheme
        norms = []
        per_workload: Dict[str, float] = {}
        totals: Dict[str, float] = {}
        for n in names:
            norm = _norm(summaries, n, defense, **knobs)
            norms.append(norm)
            per_workload[n] = norm
            summary = summaries[_spec(n, defense, **knobs)]
            for key, value in summary.stat.items():
                totals[key] = totals.get(key, 0) + value
        transient = transient_summary(totals)
        fetched = transient["fetched_uops"]
        transient_share = (transient["transient_uops"] / fetched
                           if fetched else 0.0)
        if kind == "SW":
            size = sum(
                mitigate_program(get_workload(n).program,
                                 scheme).code_size_overhead
                for n in names) / len(names)
            size_cell = f"{100 * size:+.1f}%"
        else:
            size = 0.0
            size_cell = "-"
        rows.append([scheme, kind] + norms
                    + [geomean(norms), f"{100 * transient_share:.1f}%",
                       size_cell])
        data[scheme] = {
            "kind": kind,
            "norm_runtime": geomean(norms),
            "per_workload": per_workload,
            "transient_share": transient_share,
            "code_size_overhead": size,
        }
    return TableResult(
        "Mitigations: software passes (unsafe core) vs hardware "
        "defenses — normalized runtime, transient share, code size",
        ["scheme", "kind"] + list(names)
        + ["geomean", "transient", "code_size"],
        rows, data)


# ======================================================================
# Tab. II — AMuLeT* security-contract testing
# ======================================================================

def table_ii(n_programs: int = 6, pairs: int = 3,
             seed: int = 2026, jobs: Optional[int] = None,
             report_dir: Optional[str] = None) -> TableResult:
    """With ``report_dir`` set, cells that record violations (in
    practice the unsafe core) additionally capture leak witnesses and
    emit forensics artifacts under ``<report_dir>/<contract>-<class>/``.
    The table itself is identical either way."""
    cells = [
        ("UNPROT-SEQ", "rand", Contract.UNPROT_SEQ),
        ("ARCH-SEQ", "arch", Contract.ARCH_SEQ),
        ("CTS-SEQ", "cts", Contract.CTS_SEQ),
        ("CT-SEQ", "ct", Contract.CT_SEQ),
        ("CT-SEQ", "unr", Contract.CT_SEQ),
    ]
    configs = [("Unsafe", "unsafe"), ("ProtDelay", "delay"),
               ("ProtTrack", "track")]
    rows = []
    data = {}
    for contract_name, instrumentation, contract in cells:
        row: List[object] = [contract_name, f"ProtCC-{instrumentation.upper()}"]
        for label, defense in configs:
            campaign = CampaignConfig(
                defense_factory=DEFENSES[defense],
                contract=contract,
                instrumentation=instrumentation,
                n_programs=n_programs,
                pairs_per_program=pairs,
                seed=seed,
                defense_name=defense,
                collect_witnesses=report_dir is not None,
            )
            result = run_campaign(campaign, jobs=jobs)
            row.append(f"{result.violations} ({result.false_positives})")
            data[(contract_name, instrumentation, label)] = result
            if report_dir is not None and result.witnesses:
                from ..forensics import write_forensics_report

                cell_dir = (f"{contract.value}-{instrumentation}-{defense}"
                            .replace("/", "_"))
                write_forensics_report(
                    result, f"{report_dir}/{cell_dir}",
                    minimize=False,
                    title=f"Tab. II leak forensics: {contract_name} / "
                          f"ProtCC-{instrumentation.upper()} / {label}")
        rows.append(row)
    return TableResult(
        "Table II: contract violations, 'true (false-positive)', per "
        "hardware configuration",
        ["contract", "instrumentation", "Unsafe", "ProtDelay", "ProtTrack"],
        rows, data)
