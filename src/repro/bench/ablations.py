"""Ablation experiments from the paper's SIX-A subsections."""

from __future__ import annotations

from typing import Dict, Tuple

from .runner import RunSpec, compiled, geomean, norm_runtime, run
from .tables import SPEC_INT_FAST, TableResult


def protcc_overhead(names: Tuple[str, ...] = SPEC_INT_FAST) -> TableResult:
    """SIX-A2: runtime and code-size overhead of ProtCC instrumentation
    with Protean's protections *disabled* (unsafe hardware)."""
    rows = []
    data: Dict = {}
    for clazz in ("cts", "ct", "unr"):
        runtimes = []
        sizes = []
        for name in names:
            base = run(RunSpec(workload=name))
            instrumented = run(RunSpec(workload=name, defense="unsafe",
                                       instrument=clazz))
            runtimes.append(instrumented.cycles / base.cycles)
            sizes.append(1.0 + compiled(name, clazz).code_size_overhead)
        runtime = geomean(runtimes)
        size = geomean(sizes)
        rows.append([f"ProtCC-{clazz.upper()}",
                     f"{100 * (size - 1):.1f}%",
                     f"{100 * (runtime - 1):.1f}%"])
        data[clazz] = {"code_size": size, "runtime": runtime}
    return TableResult(
        "SIX-A2: ProtCC instrumentation overhead (protections disabled)",
        ["pass", "code_size_ovh", "runtime_ovh"], rows, data)


def l1d_tag_variants(names: Tuple[str, ...] = SPEC_INT_FAST) -> TableResult:
    """SIX-A3: memory-protection tracking variants: none / L1D-shadow /
    perfect shadow memory."""
    rows = []
    data: Dict = {}
    for clazz in ("arch", "ct"):
        entry = {}
        for mode in ("none", "l1d", "perfect"):
            value = geomean(
                norm_runtime(n, "track", instrument=clazz, l1d_tags=mode)
                for n in names)
            entry[mode] = value
        rows.append([f"Track-{clazz.upper()}", entry["none"], entry["l1d"],
                     entry["perfect"]])
        data[clazz] = entry
    return TableResult(
        "SIX-A3: protection-tagged L1D variants (geomean norm. runtime)",
        ["config", "no tags", "L1D tags", "perfect shadow"], rows, data)


def access_mechanisms(names: Tuple[str, ...] = SPEC_INT_FAST) -> TableResult:
    """SIX-A4: raw AccessDelay/AccessTrack applied to ProtISA ProtSets
    (selective wakeup / access predictor disabled) vs ProtDelay/ProtTrack."""
    rows = []
    data: Dict = {}
    for clazz in ("arch", "ct"):
        entry = {}
        for label, defense in (("AccessDelay", "delay-raw"),
                               ("ProtDelay", "delay"),
                               ("AccessTrack", "track-raw"),
                               ("ProtTrack", "track")):
            entry[label] = geomean(
                norm_runtime(n, defense, instrument=clazz) for n in names)
        rows.append([clazz.upper(), entry["AccessDelay"], entry["ProtDelay"],
                     entry["AccessTrack"], entry["ProtTrack"]])
        data[clazz] = entry
    return TableResult(
        "SIX-A4: raw access-based mechanisms on ProtISA vs Protean's "
        "adaptations",
        ["class", "AccessDelay", "ProtDelay", "AccessTrack", "ProtTrack"],
        rows, data)


def control_model(names: Tuple[str, ...] = SPEC_INT_FAST) -> TableResult:
    """SIX-A6: the noncomprehensive CONTROL speculation model."""
    rows = []
    data: Dict = {}
    for label, defense, instrument in (
            ("STT", "stt", None), ("SPT", "spt", None),
            ("Track-ARCH", "track", "arch"), ("Track-CT", "track", "ct")):
        entry = {}
        for model in ("atcommit", "control"):
            entry[model] = geomean(
                norm_runtime(n, defense, instrument=instrument,
                             speculation=model) for n in names)
        rows.append([label, entry["atcommit"], entry["control"]])
        data[label] = entry
    return TableResult(
        "SIX-A6: ATCOMMIT vs CONTROL speculation models "
        "(geomean norm. runtime)",
        ["defense", "ATCOMMIT", "CONTROL"], rows, data)


def bugfix_overhead(names: Tuple[str, ...] = SPEC_INT_FAST) -> TableResult:
    """SIX-A7: runtime cost of the squash-notification security fix for
    the secure baselines (buggy vs fixed logic)."""
    rows = []
    data: Dict = {}
    for defense in ("stt", "spt", "spt-sb"):
        buggy = geomean(norm_runtime(n, defense, buggy_squash=True)
                        for n in names)
        fixed = geomean(norm_runtime(n, defense, buggy_squash=False)
                        for n in names)
        rows.append([defense.upper(), buggy, fixed,
                     f"{100 * (fixed - buggy):+.1f}%"])
        data[defense] = {"buggy": buggy, "fixed": fixed}
    return TableResult(
        "SIX-A7: squash-notification bug fix overhead (geomean norm. "
        "runtime, buggy vs fixed)",
        ["defense", "buggy", "fixed", "delta"], rows, data)
