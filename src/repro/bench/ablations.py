"""Ablation experiments from the paper's SIX-A subsections.

Every builder declares its full RunSpec matrix up front and resolves it
through the parallel batch executor (see :mod:`repro.bench.executor`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .executor import run_batch
from .runner import RunSpec, compiled, geomean
from .tables import SPEC_INT_FAST, TableResult, _norm, _spec


def protcc_overhead(names: Tuple[str, ...] = SPEC_INT_FAST,
                    jobs: Optional[int] = None) -> TableResult:
    """SIX-A2: runtime and code-size overhead of ProtCC instrumentation
    with Protean's protections *disabled* (unsafe hardware)."""
    specs: List[RunSpec] = [_spec(name) for name in names]
    for clazz in ("cts", "ct", "unr"):
        for name in names:
            specs.append(_spec(name, "unsafe", clazz))
    summaries = run_batch(specs, jobs=jobs)

    rows = []
    data: Dict = {}
    for clazz in ("cts", "ct", "unr"):
        runtimes = []
        sizes = []
        for name in names:
            runtimes.append(_norm(summaries, name, "unsafe", clazz))
            sizes.append(1.0 + compiled(name, clazz).code_size_overhead)
        runtime = geomean(runtimes)
        size = geomean(sizes)
        rows.append([f"ProtCC-{clazz.upper()}",
                     f"{100 * (size - 1):.1f}%",
                     f"{100 * (runtime - 1):.1f}%"])
        data[clazz] = {"code_size": size, "runtime": runtime}
    return TableResult(
        "SIX-A2: ProtCC instrumentation overhead (protections disabled)",
        ["pass", "code_size_ovh", "runtime_ovh"], rows, data)


def l1d_tag_variants(names: Tuple[str, ...] = SPEC_INT_FAST,
                     jobs: Optional[int] = None) -> TableResult:
    """SIX-A3: memory-protection tracking variants: none / L1D-shadow /
    perfect shadow memory."""
    specs: List[RunSpec] = [_spec(name) for name in names]
    for clazz in ("arch", "ct"):
        for mode in ("none", "l1d", "perfect"):
            for name in names:
                specs.append(_spec(name, "track", clazz, l1d_tags=mode))
    summaries = run_batch(specs, jobs=jobs)

    rows = []
    data: Dict = {}
    for clazz in ("arch", "ct"):
        entry = {}
        for mode in ("none", "l1d", "perfect"):
            entry[mode] = geomean(
                _norm(summaries, n, "track", clazz, l1d_tags=mode)
                for n in names)
        rows.append([f"Track-{clazz.upper()}", entry["none"], entry["l1d"],
                     entry["perfect"]])
        data[clazz] = entry
    return TableResult(
        "SIX-A3: protection-tagged L1D variants (geomean norm. runtime)",
        ["config", "no tags", "L1D tags", "perfect shadow"], rows, data)


def access_mechanisms(names: Tuple[str, ...] = SPEC_INT_FAST,
                      jobs: Optional[int] = None) -> TableResult:
    """SIX-A4: raw AccessDelay/AccessTrack applied to ProtISA ProtSets
    (selective wakeup / access predictor disabled) vs ProtDelay/ProtTrack."""
    mechanisms = (("AccessDelay", "delay-raw"), ("ProtDelay", "delay"),
                  ("AccessTrack", "track-raw"), ("ProtTrack", "track"))
    specs: List[RunSpec] = [_spec(name) for name in names]
    for clazz in ("arch", "ct"):
        for _, defense in mechanisms:
            for name in names:
                specs.append(_spec(name, defense, clazz))
    summaries = run_batch(specs, jobs=jobs)

    rows = []
    data: Dict = {}
    for clazz in ("arch", "ct"):
        entry = {}
        for label, defense in mechanisms:
            entry[label] = geomean(
                _norm(summaries, n, defense, clazz) for n in names)
        rows.append([clazz.upper(), entry["AccessDelay"], entry["ProtDelay"],
                     entry["AccessTrack"], entry["ProtTrack"]])
        data[clazz] = entry
    return TableResult(
        "SIX-A4: raw access-based mechanisms on ProtISA vs Protean's "
        "adaptations",
        ["class", "AccessDelay", "ProtDelay", "AccessTrack", "ProtTrack"],
        rows, data)


def control_model(names: Tuple[str, ...] = SPEC_INT_FAST,
                  jobs: Optional[int] = None) -> TableResult:
    """SIX-A6: the noncomprehensive CONTROL speculation model."""
    configs = (("STT", "stt", None), ("SPT", "spt", None),
               ("Track-ARCH", "track", "arch"), ("Track-CT", "track", "ct"))
    specs: List[RunSpec] = [_spec(name) for name in names]
    for _, defense, instrument in configs:
        for model in ("atcommit", "control"):
            for name in names:
                specs.append(_spec(name, defense, instrument,
                                   speculation=model))
    summaries = run_batch(specs, jobs=jobs)

    rows = []
    data: Dict = {}
    for label, defense, instrument in configs:
        entry = {}
        for model in ("atcommit", "control"):
            entry[model] = geomean(
                _norm(summaries, n, defense, instrument,
                      speculation=model) for n in names)
        rows.append([label, entry["atcommit"], entry["control"]])
        data[label] = entry
    return TableResult(
        "SIX-A6: ATCOMMIT vs CONTROL speculation models "
        "(geomean norm. runtime)",
        ["defense", "ATCOMMIT", "CONTROL"], rows, data)


def bugfix_overhead(names: Tuple[str, ...] = SPEC_INT_FAST,
                    jobs: Optional[int] = None) -> TableResult:
    """SIX-A7: runtime cost of the squash-notification security fix for
    the secure baselines (buggy vs fixed logic)."""
    specs: List[RunSpec] = [_spec(name) for name in names]
    for defense in ("stt", "spt", "spt-sb"):
        for buggy in (True, False):
            for name in names:
                specs.append(_spec(name, defense, buggy_squash=buggy))
    summaries = run_batch(specs, jobs=jobs)

    rows = []
    data: Dict = {}
    for defense in ("stt", "spt", "spt-sb"):
        buggy = geomean(_norm(summaries, n, defense, buggy_squash=True)
                        for n in names)
        fixed = geomean(_norm(summaries, n, defense, buggy_squash=False)
                        for n in names)
        rows.append([defense.upper(), buggy, fixed,
                     f"{100 * (fixed - buggy):+.1f}%"])
        data[defense] = {"buggy": buggy, "fixed": fixed}
    return TableResult(
        "SIX-A7: squash-notification bug fix overhead (geomean norm. "
        "runtime, buggy vs fixed)",
        ["defense", "buggy", "fixed", "delta"], rows, data)
