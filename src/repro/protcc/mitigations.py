"""Software Spectre mitigations as first-class compiler passes.

The pass family the software-defense SoK catalogues (PAPERS.md),
implemented against the same :class:`Rewriter` the ProtCC classes use,
so mitigated programs run unchanged on all three engines with the
``Unsafe`` hardware defense:

* ``fence`` — the LFENCE analogue: an MFENCE on *both* edges of every
  conditional branch, so no wrong-path instruction younger than a
  misprediction ever issues.
* ``slh`` — speculative load hardening: a poison register is set to
  all-ones on every mispredicted edge (data-dependently on the same
  FLAGS the branch reads, so hardware speculation cannot skip it) and
  OR-masked into every loaded value.  Secrets enter registers only
  through loads in this model, so every transiently-loaded value a
  transmitter could leak is forced to -1.
* ``mask`` — index masking: loads whose index is bounds-checked by a
  ``cmpi idx, K`` branch are rewritten to use ``idx & (next_pow2(K)-1)``.
  Deliberately pattern-limited (like the real -mspeculative-load-
  hardening ``__builtin_speculation_safe_value`` idiom): gadgets that
  bounds-check with ``cmp`` or leak through non-load channels stay
  vulnerable, which the fuzz matrix proves.
* ``blade`` — Beyond-Over-Protection-style targeted cuts: a fence only
  where the :func:`transient_taint` analysis finds a load-to-transmitter
  def-use chain, instead of on every branch edge.

Every pass preserves architectural results: the sequential reference
executor treats MFENCE as a NOP, SLH's poison is provably zero on the
committed path, and masking only applies where ``idx < K`` is
architecturally guaranteed.  The equivalence test suite checks this on
random programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.operations import Cond, FLAG_WRITERS, Op
from ..isa.program import Program
from ..isa.registers import FLAGS, NUM_REGS, SP
from .analyses import (
    ALL_REGS_MASK,
    CALLER_SAVED,
    ReachingDefinitions,
    SP_MASK,
    cts_sensitive_regs,
    regs_mask,
    transient_taint,
)
from .cfg import FunctionGraph, function_regions
from .rewriter import Rewriter


class MitigationError(ValueError):
    """A pass cannot be applied to this program (e.g. no free register
    is available for SLH's poison)."""


@dataclass
class MitigatedProgram:
    """A software-mitigated binary plus static instrumentation stats."""

    program: Program
    mitigation: str
    base_size: int
    #: Pass-specific counters (fences inserted, loads hardened, ...).
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def code_size_overhead(self) -> float:
        if self.base_size == 0:
            return 0.0
        extra = len(self.program.instructions) - self.base_size
        return extra / self.base_size


def _fence() -> Instruction:
    return Instruction(Op.MFENCE)


def free_registers(program: Program) -> List[int]:
    """Registers never read or written by ``program`` (highest first),
    excluding SP and FLAGS which are implicitly live everywhere."""
    used = 0
    for inst in program.instructions:
        used |= (regs_mask(inst.src_regs()) | regs_mask(inst.dest_regs())
                 | regs_mask(inst.addr_regs()))
    return [reg for reg in range(NUM_REGS - 1, -1, -1)
            if reg not in (SP, FLAGS) and not (used >> reg) & 1]


# ======================================================================
# fence: serialize every conditional-branch edge
# ======================================================================

def mitigate_fence(rewriter: Rewriter, program: Program) -> Dict[str, int]:
    """MFENCE on both edges of every conditional branch.

    Idempotent: if an edge already begins with a fence (because the
    pass ran before — the not-taken successor, or the trampoline a
    previous run left at the branch target), it is left alone.
    """
    fences = 0
    for pc, inst in enumerate(program.instructions):
        if inst.op is not Op.BR:
            continue
        if pc + 1 < len(program) and program[pc + 1].op is not Op.MFENCE:
            rewriter.insert_after(pc, [_fence()])
            fences += 1
        if program[inst.target].op is not Op.MFENCE:
            rewriter.split_taken_edge(pc, [_fence()])
            fences += 1
    return {"fences": fences}


# ======================================================================
# slh: poison register threaded through branch conditions
# ======================================================================

#: FLAGS-indicator recipes: instruction templates leaving T = 1 iff the
#: condition holds, given the flag encoding ZF=1, LT=2, B=4.
def _indicator(cond: Cond, temp: int) -> List[Instruction]:
    def op3(op: Op, ra: int, imm: int) -> Instruction:
        return Instruction(op, rd=temp, ra=ra, imm=imm)

    if cond is Cond.EQ:
        return [op3(Op.ANDI, FLAGS, 1)]
    if cond is Cond.NE:
        return [op3(Op.ANDI, FLAGS, 1), op3(Op.XORI, temp, 1)]
    if cond is Cond.LT:
        return [op3(Op.SHRI, FLAGS, 1), op3(Op.ANDI, temp, 1)]
    if cond is Cond.GE:
        return _indicator(Cond.LT, temp) + [op3(Op.XORI, temp, 1)]
    if cond is Cond.B:
        return [op3(Op.SHRI, FLAGS, 2), op3(Op.ANDI, temp, 1)]
    if cond is Cond.AE:
        return _indicator(Cond.B, temp) + [op3(Op.XORI, temp, 1)]
    if cond is Cond.LE:
        # (flags & 3) in {0..3}; +3 then >>2 maps 0 -> 0, 1..3 -> 1.
        return [op3(Op.ANDI, FLAGS, 3), op3(Op.ADDI, temp, 3),
                op3(Op.SHRI, temp, 2)]
    if cond is Cond.GT:
        return _indicator(Cond.LE, temp) + [op3(Op.XORI, temp, 1)]
    raise MitigationError(f"no indicator recipe for {cond!r}")


_NEGATE = {Cond.EQ: Cond.NE, Cond.NE: Cond.EQ, Cond.LT: Cond.GE,
           Cond.GE: Cond.LT, Cond.LE: Cond.GT, Cond.GT: Cond.LE,
           Cond.B: Cond.AE, Cond.AE: Cond.B}


def _poison_update(wrong_if: Cond, poison: int, temp: int
                   ) -> List[Instruction]:
    """T := 1 iff ``wrong_if`` holds (i.e. this edge is the wrong
    path); then P |= -T.  Architecturally T is always 0 here, so the
    update is an identity; transiently it forces P to all-ones."""
    return _indicator(wrong_if, temp) + [
        Instruction(Op.MULI, rd=temp, ra=temp, imm=-1),
        Instruction(Op.OR, rd=poison, ra=poison, rb=temp),
    ]


def mitigate_slh(rewriter: Rewriter, program: Program) -> Dict[str, int]:
    """Speculative load hardening (value-hardening variant).

    Needs two registers the program never touches: the poison P (must
    be callee-saved so leaf calls preserve it across the wrong path)
    and a scratch T.  P is zeroed once at the program entry; on each
    branch edge the wrong-path indicator — computed from the very FLAGS
    the branch resolved on — is multiplied to 0/-1 and OR-ed into P;
    and every loaded value is OR-masked with P.  None of the inserted
    ALU ops write FLAGS, so the program's own control flow is
    undisturbed.
    """
    free = free_registers(program)
    callee_saved = [reg for reg in free if reg not in CALLER_SAVED]
    if not callee_saved or len(free) < 2:
        raise MitigationError(
            "slh needs one free callee-saved register (poison) and one "
            f"free scratch register; free set is {free}")
    poison = callee_saved[0]
    temp = next(reg for reg in free if reg != poison)

    rewriter.insert_before(program.entry,
                           [Instruction(Op.MOVI, rd=poison, imm=0)])
    edges = 0
    loads = 0
    for pc, inst in enumerate(program.instructions):
        if inst.op is Op.BR:
            # Fall-through edge is wrong iff the condition held; the
            # taken edge is wrong iff it did not.
            rewriter.insert_after(pc, _poison_update(inst.cond, poison,
                                                     temp))
            rewriter.split_taken_edge(pc, _poison_update(
                _NEGATE[inst.cond], poison, temp))
            edges += 2
        elif inst.op is Op.LOAD:
            rewriter.insert_after(pc, [Instruction(Op.OR, rd=inst.rd,
                                                   ra=inst.rd, rb=poison)])
            loads += 1
    return {"poison_reg": poison, "temp_reg": temp,
            "edges_hardened": edges, "loads_hardened": loads}


# ======================================================================
# mask: index masking on bounds-checked loads
# ======================================================================

#: How far the pass walks a straight-line chain (backward to find the
#: bounds check, forward to find protected loads).
_SCAN_LIMIT = 32


def _find_bounds_check(graph: FunctionGraph, branch_pc: int
                       ) -> Optional[Instruction]:
    """Walk the unique straight-line path into ``branch_pc`` to the
    flag-writer it branches on; None unless that is a ``cmpi`` whose
    checked index is not redefined between check and branch."""
    cur = branch_pc
    clobbered = 0
    for _ in range(_SCAN_LIMIT):
        preds = graph.preds.get(cur, ())
        if len(preds) != 1:
            return None
        cur = preds[0]
        inst = graph.instruction(cur)
        if inst.op in FLAG_WRITERS:
            if inst.op is Op.CMPI and not (clobbered >> inst.ra) & 1:
                return inst
            return None
        if inst.op is Op.CALL:
            return None  # clobbers FLAGS by convention
        clobbered |= regs_mask(inst.dest_regs())
    return None


def _index_nonneg(graph: FunctionGraph, rdefs: ReachingDefinitions,
                  cmp_inst: Instruction, branch_pc: int) -> bool:
    """True when the checked index provably fits in the signed-positive
    range, making a signed ``blt idx, K`` a real upper bound."""
    defs = rdefs.reaching(branch_pc, cmp_inst.ra)
    if len(defs) != 1 or defs[0].kind != "inst":
        return False
    definition = graph.instruction(defs[0].pc)
    if definition.op is Op.MOVI:
        return definition.imm >= 0
    if definition.op is Op.ANDI:
        return definition.imm >= 0
    if definition.op is Op.SHRI:
        return definition.imm >= 1
    return False


def _protected_loads(graph: FunctionGraph, branch_pc: int, start: int,
                     index: int) -> List[int]:
    """Loads indexed by ``index`` on the straight-line chain entered
    only through the branch edge at ``start`` (unique predecessors all
    the way, so the bound holds on every execution)."""
    loads: List[int] = []
    cur = start
    prev = branch_pc
    for _ in range(_SCAN_LIMIT):
        if graph.preds.get(cur, None) != [prev]:
            break
        inst = graph.instruction(cur)
        if inst.op is Op.LOAD and index in inst.addr_regs():
            loads.append(cur)
        if index in inst.dest_regs() or inst.op is Op.CALL:
            break
        if inst.is_control or inst.op is Op.HALT:
            break
        prev, cur = cur, cur + 1
    return loads


def mitigate_mask(rewriter: Rewriter, program: Program) -> Dict[str, int]:
    """Index masking: after a ``cmpi idx, K`` bounds check branches to
    the in-bounds side, rewrite in-bounds loads to index with
    ``idx & (next_pow2(K) - 1)`` — architecturally the identity, and a
    hard cap on how far a transient out-of-bounds index can reach.

    Only the unambiguous pattern is rewritten: an unsigned check (or a
    signed one whose index is provably non-negative), a unique
    flag-definition, and loads dominated by the checked edge.  Anything
    else — ``cmp``-based checks, multi-predecessor joins, non-load
    transmitters — is left untouched, so mask alone is *not* a complete
    defense; the fuzz matrix demonstrates exactly that.
    """
    free = free_registers(program)
    if not free:
        raise MitigationError("mask needs one free scratch register")
    temp = free[0]
    masked = 0
    rewritten: set = set()
    for region in function_regions(program):
        graph = FunctionGraph(program, region)
        rdefs = ReachingDefinitions(graph)
        for pc in graph.pcs:
            inst = graph.instruction(pc)
            if inst.op is not Op.BR:
                continue
            if inst.cond in (Cond.B, Cond.LT):
                start, via_split = inst.target, True
            elif inst.cond in (Cond.AE, Cond.GE):
                start, via_split = pc + 1, False
            else:
                continue
            flag_defs = rdefs.reaching(pc, FLAGS)
            if len(flag_defs) != 1 or flag_defs[0].kind != "inst":
                continue
            cmp_inst = _find_bounds_check(graph, pc)
            if cmp_inst is None or cmp_inst.imm <= 0:
                continue
            if inst.cond in (Cond.LT, Cond.GE) and not _index_nonneg(
                    graph, rdefs, cmp_inst, pc):
                continue
            index = cmp_inst.ra
            mask = (1 << (cmp_inst.imm - 1).bit_length()) - 1
            if not via_split and start not in graph.preds:
                continue
            for load_pc in _protected_loads(graph, pc, start, index):
                if load_pc in rewritten:
                    continue
                rewritten.add(load_pc)
                old = program[load_pc]
                rewriter.insert_before(load_pc, [
                    Instruction(Op.ANDI, rd=temp, ra=index, imm=mask)])
                rewriter.replace(load_pc, Instruction(
                    Op.LOAD, rd=old.rd,
                    ra=temp if old.ra == index else old.ra,
                    rb=temp if old.rb == index else old.rb,
                    imm=old.imm, prot=old.prot))
                masked += 1
    return {"masked_loads": masked, "temp_reg": temp}


# ======================================================================
# blade: fence only the load -> transmitter chains
# ======================================================================

def mitigate_blade(rewriter: Rewriter, program: Program) -> Dict[str, int]:
    """Cut every load-to-transmitter def-use chain with one fence,
    leaving untainted code unfenced (Beyond Over-Protection's
    may-transient criterion over :func:`transient_taint`).

    Callee entries conservatively assume every register but SP carries
    loaded data (the caller may pass a loaded value in any register);
    the program entry starts clean because harness-provided inputs are
    public by the contract construction.  Division operands count as
    transmitters (the DIV timing channel).  Idempotent: a fence the
    pass inserted clears the taint that demanded it.
    """
    fences = 0
    for region in function_regions(program):
        graph = FunctionGraph(program, region)
        entry_tainted = 0 if program.entry in region \
            else ALL_REGS_MASK & ~SP_MASK
        taint = transient_taint(graph, entry_tainted)
        for pc in graph.pcs:
            inst = graph.instruction(pc)
            sensitive = regs_mask(cts_sensitive_regs(inst)) & ~SP_MASK
            if sensitive & taint[pc]:
                rewriter.insert_before(pc, [_fence()])
                fences += 1
    return {"fences": fences}


# ======================================================================
# Registry and driver
# ======================================================================

MITIGATIONS = {
    "fence": mitigate_fence,
    "slh": mitigate_slh,
    "mask": mitigate_mask,
    "blade": mitigate_blade,
}

#: Passes that claim full ARCH-SEQ contract security on their own.
#: ``mask`` is deliberately absent: it only hardens the bounds-checked
#: load patterns it can prove, so the fuzzer is expected to find leaks
#: it does not cover.  CI gates on this set — a member recording a
#: violation is a bug in the pass, not in the test.
SECURE_MITIGATIONS = frozenset({"fence", "slh", "blade"})


def mitigate_program(program: Program, mitigation: str) -> MitigatedProgram:
    """Apply one registered software mitigation to ``program``.

    Mirrors :func:`compile_program`: all edits are registered against
    the original program through one :class:`Rewriter` and applied in a
    single rebuild, so labels, branch targets, entry point, and
    function regions stay consistent.  To combine with ProtCC classes,
    compile first and mitigate the compiled program.
    """
    if mitigation not in MITIGATIONS:
        raise MitigationError(
            f"unknown mitigation {mitigation!r}; "
            f"registered: {', '.join(sorted(MITIGATIONS))}")
    if not program.is_linked:
        program = program.linked()
    rewriter = Rewriter(program)
    stats = MITIGATIONS[mitigation](rewriter, program)
    built = rewriter.build()
    return MitigatedProgram(program=built.program, mitigation=mitigation,
                            base_size=len(program.instructions),
                            stats=dict(stats))
