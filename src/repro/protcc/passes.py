"""The ProtCC instrumentation passes (paper SV-A).

Each pass decides, per function, which instructions get a PROT prefix
and where declassifying identity moves are inserted.  Passes register
their edits against a shared :class:`Rewriter` keyed by *original* PCs,
so a multi-class program is compiled with one rebuild
(:func:`repro.protcc.driver.compile_program`).

* ``ProtCC-ARCH`` — no-op: unmodified binaries already program the
  all-unaccessed-memory ProtSet.
* ``ProtCC-CTS``  — Serberus-style secrecy-type inference: start with
  everything secret, force transmitter-sensitive operands (and,
  transitively, their sources) public, PROT-prefix secret definitions,
  and unprotect publicly-typed arguments/call results with identity
  moves.
* ``ProtCC-CT``   — past-leaked + bound-to-leak must-analyses;
  PROT-prefix definitions that are neither; declassify registers on the
  control-flow edges where they become newly bound-to-leak.
* ``ProtCC-UNR``  — protect everything except registers that provably
  never hold program data (stack pointer, constants, derivations).
* ``ProtCC-RAND`` — random prefixes, for fuzzing ProtISA hardware
  against the UNPROT-SEQ contract (paper SVII-B4b).
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from ..isa.operations import Op
from ..isa.registers import NUM_REGS, SP
from .analyses import (
    ReachingDefinitions,
    bound_to_leak,
    bound_to_leak_out,
    cts_sensitive_regs,
    past_leaked,
    past_leaked_after,
    unprotectable,
    unprotectable_after,
)
from .cfg import FunctionGraph
from .rewriter import Rewriter, identity_move

#: The four vulnerable code classes plus the fuzzing pseudo-class.
CLASSES = ("arch", "cts", "ct", "unr", "rand")


class PassResult:
    """Per-function edit log (consumed by the driver's metadata)."""

    def __init__(self) -> None:
        #: Original PCs whose instruction was PROT-prefixed.
        self.prot_pcs: Set[int] = set()
        #: (pc, count) of identity moves registered before each point.
        self.inserted_before: List[Tuple[int, int]] = []
        #: Number of taken-edge trampolines created.
        self.splits = 0


def apply_arch(rewriter: Rewriter, graph: FunctionGraph) -> PassResult:
    """ProtCC-ARCH is a no-op (paper SV-A1): unprefixed binaries unprotect
    exactly what they architecturally access."""
    return PassResult()


# ======================================================================
# ProtCC-CTS
# ======================================================================

def apply_cts(rewriter: Rewriter, graph: FunctionGraph,
              div_transmits: bool = True,
              entry_public: Tuple[int, ...] = ()) -> PassResult:
    result = PassResult()
    rd = ReachingDefinitions(graph)

    # Worklist closure: sensitive operands must be publicly typed, and a
    # public definition needs public sources.
    public: Set[int] = set()
    worklist: List[int] = []

    def force(def_ids) -> None:
        for definition in def_ids:
            if definition.def_id not in public:
                public.add(definition.def_id)
                worklist.append(definition.def_id)

    # Axioms of the typing rules: immediates are public, and the stack
    # pointer's +/-8 updates inherit its (public) type.
    from ..isa.registers import SP as SP_REG

    for definition in rd.defs:
        if definition.kind != "inst":
            continue
        inst = graph.instruction(definition.pc)
        if inst.op is Op.MOVI or (
                definition.reg == SP_REG
                and inst.op in (Op.PUSH, Op.POP, Op.CALL, Op.RET)):
            public.add(definition.def_id)
    # User annotations (paper SV-C): declared-public arguments.
    for definition in rd.defs_at(None):
        if definition.reg in entry_public:
            public.add(definition.def_id)

    for pc in graph.pcs:
        inst = graph.instruction(pc)
        for reg in cts_sensitive_regs(inst, div_transmits):
            force(rd.reaching(pc, reg))

    while worklist:
        def_id = worklist.pop()
        definition = rd.defs[def_id]
        if definition.kind != "inst":
            continue  # entry/call defs: public by class assumption
        for src in rd.def_source_regs(definition):
            force(rd.reaching(definition.pc, src))

    # Instrumentation: prefix secret definitions.
    for pc in graph.pcs:
        defs = [d for d in rd.defs_at(pc) if d.kind == "inst"]
        if not defs:
            continue
        secret = [d for d in defs if d.def_id not in public]
        if secret:
            rewriter.set_prot(pc, True)
            result.prot_pcs.add(pc)
            # Multi-destination fix-up: re-unprotect public co-outputs
            # (e.g. the stack pointer of a PROT-prefixed POP).
            fixes = [identity_move(d.reg) for d in defs
                     if d.def_id in public]
            if fixes:
                rewriter.insert_after(pc, fixes)
                result.inserted_before.append((pc + 1, len(fixes)))

    # Declassify publicly-typed arguments at entry (only those actually
    # consumed before redefinition, to bound code growth).
    used_entry_regs = _entry_used_regs(graph, rd, public)
    used_entry_regs |= set(entry_public)
    if used_entry_regs:
        moves = [identity_move(reg) for reg in sorted(used_entry_regs)]
        rewriter.insert_before(graph.entry, moves)
        result.inserted_before.append((graph.entry, len(moves)))

    # Declassify publicly-typed call results after each CALL.
    for pc in graph.pcs:
        call_defs = [d for d in rd.defs_at(pc) if d.kind == "call"]
        pub_regs = sorted({d.reg for d in call_defs if d.def_id in public})
        if pub_regs:
            moves = [identity_move(reg) for reg in pub_regs]
            rewriter.insert_after(pc, moves)
            result.inserted_before.append((pc + 1, len(moves)))
    return result


def _entry_used_regs(graph: FunctionGraph, rd: ReachingDefinitions,
                     public: Set[int]) -> Set[int]:
    entry_public = {d.def_id: d.reg for d in rd.defs_at(None)
                    if d.def_id in public}
    used: Set[int] = set()
    for pc in graph.pcs:
        for reg in graph.instruction(pc).src_regs():
            for definition in rd.reaching(pc, reg):
                if definition.def_id in entry_public:
                    used.add(reg)
    return used


# ======================================================================
# ProtCC-CT
# ======================================================================

def apply_ct(rewriter: Rewriter, graph: FunctionGraph,
             entry_public: Tuple[int, ...] = ()) -> PassResult:
    result = PassResult()
    entry_mask = sum(1 << reg for reg in entry_public)
    pl_in = past_leaked(graph, entry_mask)
    btl_in = bound_to_leak(graph)
    if entry_public:
        moves = [identity_move(reg) for reg in sorted(entry_public)]
        rewriter.insert_before(graph.entry, moves)
        result.inserted_before.append((graph.entry, len(moves)))

    for pc in graph.pcs:
        inst = graph.instruction(pc)
        dests = inst.dest_regs()
        if dests:
            safe = (past_leaked_after(graph, pl_in, pc)
                    | bound_to_leak_out(graph, btl_in, pc))
            if any(not (safe >> reg) & 1 for reg in dests):
                rewriter.set_prot(pc, True)
                result.prot_pcs.add(pc)
                fixes = [identity_move(reg) for reg in dests
                         if (safe >> reg) & 1]
                if fixes:
                    rewriter.insert_after(pc, fixes)
                    result.inserted_before.append((pc + 1, len(fixes)))

        # Edge declassification: a register newly bound-to-leak along
        # one successor edge (but not all) gets an identity move there.
        succs = graph.succs[pc]
        if inst.op is Op.BR and len(succs) == 2:
            merged = bound_to_leak_out(graph, btl_in, pc)
            fall_new = btl_in.get(pc + 1, 0) & ~merged
            taken_new = btl_in.get(inst.target, 0) & ~merged
            already = past_leaked_after(graph, pl_in, pc)
            fall_new &= ~already
            taken_new &= ~already
            if fall_new:
                moves = [identity_move(reg) for reg in _bits(fall_new)]
                rewriter.insert_after(pc, moves)
                result.inserted_before.append((pc + 1, len(moves)))
            if taken_new:
                moves = [identity_move(reg) for reg in _bits(taken_new)]
                rewriter.split_taken_edge(pc, moves)
                result.splits += 1

    # Declassify bound-to-leak registers at function entry (public
    # arguments, Fig. 3d line 1).
    entry_btl = btl_in.get(graph.entry, 0) & ~(1 << SP)
    if entry_btl:
        moves = [identity_move(reg) for reg in _bits(entry_btl)]
        rewriter.insert_before(graph.entry, moves)
        result.inserted_before.append((graph.entry, len(moves)))
    return result


def _bits(mask: int) -> List[int]:
    return [reg for reg in range(NUM_REGS) if (mask >> reg) & 1]


# ======================================================================
# ProtCC-UNR
# ======================================================================

def apply_unr(rewriter: Rewriter, graph: FunctionGraph,
              entry_public: Tuple[int, ...] = ()) -> PassResult:
    result = PassResult()
    entry_mask = sum(1 << reg for reg in entry_public)
    in_sets = unprotectable(graph, entry_mask)
    if entry_public:
        moves = [identity_move(reg) for reg in sorted(entry_public)]
        rewriter.insert_before(graph.entry, moves)
        result.inserted_before.append((graph.entry, len(moves)))
    for pc in graph.pcs:
        inst = graph.instruction(pc)
        dests = inst.dest_regs()
        if not dests:
            continue
        safe = unprotectable_after(graph, in_sets, pc)
        if any(not (safe >> reg) & 1 for reg in dests):
            rewriter.set_prot(pc, True)
            result.prot_pcs.add(pc)
            fixes = [identity_move(reg) for reg in dests
                     if (safe >> reg) & 1]
            if fixes:
                rewriter.insert_after(pc, fixes)
                result.inserted_before.append((pc + 1, len(fixes)))
    return result


# ======================================================================
# ProtCC-RAND (testing only)
# ======================================================================

def apply_rand(rewriter: Rewriter, graph: FunctionGraph,
               rng: Optional[random.Random] = None,
               density: float = 0.5) -> PassResult:
    """PROT-prefix a random subset of instructions: exercises arbitrary
    ProtISA binaries against the UNPROT-SEQ contract (paper SVII-B4b)."""
    result = PassResult()
    rng = rng or random.Random(0)
    for pc in graph.pcs:
        if graph.instruction(pc).dest_regs() and rng.random() < density:
            rewriter.set_prot(pc, True)
            result.prot_pcs.add(pc)
    return result
