"""Program rewriting for ProtCC instrumentation.

Supports the three shapes of edit ProtCC performs:

* replacing instructions in place (PROT prefixing),
* inserting instruction sequences before a PC (entry identity moves,
  post-CALL declassification moves, fall-through edge moves), and
* splitting a branch's *taken* edge with a trampoline (the edge moves
  of ProtCC-CT, paper SV-A3).

All labels, branch targets, the entry point, and function regions are
remapped.  Inserted instructions execute exactly on the path they were
requested for, so instrumentation never changes architectural results —
a property the test suite checks on random programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..isa.instruction import Instruction
from ..isa.operations import Op
from ..isa.program import FunctionRegion, Program


@dataclass
class EdgeSplit:
    branch_pc: int
    target_pc: int
    instructions: List[Instruction]


@dataclass
class RewriteResult:
    """A rebuilt program plus the layout maps passes use to translate
    per-PC metadata (e.g. ProtCC-CTS's publicly-typed definition set)
    into final-program coordinates."""

    program: Program
    #: old pc -> new position of that same instruction
    inst_pos: Dict[int, int]
    #: old pc -> new position of the insertion point just before it
    point_pos: Dict[int, int]
    #: start position of each trampoline, in split registration order
    split_pos: List[int] = field(default_factory=list)

    def before_positions(self, pc: int, count: int) -> List[int]:
        """Final positions of the ``count`` instructions inserted before
        ``pc`` (in insertion order)."""
        start = self.point_pos[pc]
        return list(range(start, start + count))


class Rewriter:
    """Accumulates edits against a linked program, then rebuilds it."""

    def __init__(self, program: Program) -> None:
        if not program.is_linked:
            program = program.linked()
        self.program = program
        self._replacements: Dict[int, Instruction] = {}
        #: Anchored inserts: executed by every path entering the point,
        #: including jumps targeting it (entry/argument declassification).
        self._before: Dict[int, List[Instruction]] = {}
        #: Fall-through inserts: executed only when control falls into
        #: the point from the previous instruction; jumps targeting the
        #: point skip them (not-taken edge moves, post-CALL moves).
        self._fall: Dict[int, List[Instruction]] = {}
        self._splits: List[EdgeSplit] = []

    # -- edit registration -------------------------------------------------

    def replace(self, pc: int, inst: Instruction) -> None:
        self._replacements[pc] = inst

    def set_prot(self, pc: int, prot: bool) -> None:
        base = self._replacements.get(pc, self.program[pc])
        self.replace(pc, base.with_prot(prot))

    def insert_before(self, pc: int, instructions: Sequence[Instruction]) -> None:
        """Insert on the straight-line path entering ``pc`` (``pc`` may
        be ``len(program)`` to append)."""
        self._before.setdefault(pc, []).extend(instructions)

    def insert_after(self, pc: int, instructions: Sequence[Instruction]) -> None:
        """Insert on the fall-through path leaving ``pc``.

        For a conditional branch this is its not-taken edge; for any
        other instruction it is the path that just executed it.  Jumps
        targeting ``pc + 1`` do *not* execute these instructions."""
        self._fall.setdefault(pc + 1, []).extend(instructions)

    def split_taken_edge(self, branch_pc: int, instructions: Sequence[Instruction]) -> None:
        """Insert on the taken edge of the conditional branch at
        ``branch_pc`` via a trampoline block."""
        inst = self.program[branch_pc]
        if inst.op is not Op.BR:
            raise ValueError("split_taken_edge requires a conditional branch")
        self._splits.append(
            EdgeSplit(branch_pc, inst.target, list(instructions)))

    # -- rebuild -------------------------------------------------------------

    def build(self) -> RewriteResult:
        program = self.program
        old_len = len(program)

        # Pass 1: lay out new positions.  Per point: fall-through
        # inserts, then the (jump-targetable) anchor with its anchored
        # inserts, then the original instruction.
        point_pos: Dict[int, int] = {}   # old pc -> jump-target anchor
        inst_pos: Dict[int, int] = {}    # old pc -> position of the inst
        cursor = 0
        for pc in range(old_len):
            cursor += len(self._fall.get(pc, ()))
            point_pos[pc] = cursor
            cursor += len(self._before.get(pc, ()))
            inst_pos[pc] = cursor
            cursor += 1
        cursor += len(self._fall.get(old_len, ()))
        point_pos[old_len] = cursor
        cursor += len(self._before.get(old_len, ()))
        body_end = cursor

        # Trampolines go after the body, tagged with fresh labels.
        split_pos: List[int] = []
        for split in self._splits:
            split_pos.append(cursor)
            cursor += len(split.instructions) + 1  # + jmp

        def remap_target(target) -> int:
            if not isinstance(target, int):
                raise ValueError(f"program must be linked, got {target!r}")
            return point_pos.get(target, body_end)

        # Pass 2: emit.
        retargeted: Dict[int, int] = {
            split.branch_pc: split_pos[i]
            for i, split in enumerate(self._splits)}
        new_instructions: List[Instruction] = []
        for pc in range(old_len):
            new_instructions.extend(self._fall.get(pc, ()))
            new_instructions.extend(self._before.get(pc, ()))
            inst = self._replacements.get(pc, program[pc])
            if inst.target is not None:
                new_target = (retargeted[pc] if pc in retargeted
                              else remap_target(inst.target))
                inst = Instruction(op=inst.op, rd=inst.rd, ra=inst.ra,
                                   rb=inst.rb, imm=inst.imm,
                                   target=new_target, cond=inst.cond,
                                   prot=inst.prot)
            new_instructions.append(inst)
        new_instructions.extend(self._fall.get(old_len, ()))
        new_instructions.extend(self._before.get(old_len, ()))
        for split in self._splits:
            new_instructions.extend(split.instructions)
            new_instructions.append(
                Instruction(Op.JMP, target=remap_target(split.target_pc)))

        labels = {name: point_pos.get(pc, body_end)
                  for name, pc in program.labels.items()}

        # Trampolines land after the body and stay unattributed; regions
        # are only consumed by ProtCC itself, which always edits against
        # the original (pre-rewrite) program.
        functions: List[FunctionRegion] = []
        for region in program.functions:
            start = point_pos[region.start]
            end = point_pos.get(region.end, body_end)
            functions.append(FunctionRegion(region.name, start, end))

        entry = point_pos[program.entry]
        rebuilt = Program(new_instructions, labels, functions, entry)
        return RewriteResult(rebuilt, inst_pos, point_pos, split_pos)


def identity_move(reg: int, prot: bool = False) -> Instruction:
    """The ProtISA (un)protect idiom: ``mov r, r`` (paper SIV-B3)."""
    return Instruction(Op.MOV, rd=reg, ra=reg, prot=prot)
