"""Instruction-level control-flow graphs for ProtCC's analyses.

ProtCC is a per-function machine-IR pass (paper SVIII-A), so the graph
here is intraprocedural: CALL falls through to its return point (the
callee is analyzed separately under its own class), RET and indirect
jumps end the function-local flow.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..isa.instruction import Instruction
from ..isa.operations import Op
from ..isa.program import FunctionRegion, Program


class FunctionGraph:
    """Successor/predecessor maps over the PCs of one function region."""

    def __init__(self, program: Program, region: FunctionRegion) -> None:
        self.program = program
        self.region = region
        self.pcs: List[int] = list(range(region.start, region.end))
        self.succs: Dict[int, List[int]] = {}
        self.preds: Dict[int, List[int]] = {pc: [] for pc in self.pcs}
        self.exits: List[int] = []
        for pc in self.pcs:
            succs = self._successors(pc)
            self.succs[pc] = succs
            if not succs:
                self.exits.append(pc)
            for succ in succs:
                self.preds[succ].append(pc)
        self.entry = region.start

    def _successors(self, pc: int) -> List[int]:
        inst = self.program[pc]
        op = inst.op
        inside = self.region.__contains__

        def local(target: int) -> List[int]:
            return [target] if inside(target) else []

        if op is Op.BR:
            succs = local(pc + 1) + local(inst.target)
            return succs
        if op is Op.JMP:
            return local(inst.target)
        if op in (Op.RET, Op.HALT, Op.JMPI):
            # Function exit (JMPI targets are statically unknown; our
            # workloads only use them as computed-goto exits).
            return []
        if op is Op.CALL:
            # Intraprocedural: flow continues at the return point.
            return local(pc + 1)
        if pc + 1 < self.region.end:
            return [pc + 1]
        return []

    def instruction(self, pc: int) -> Instruction:
        return self.program[pc]

    def reverse_postorder(self) -> List[int]:
        """RPO from the entry (unreachable pcs appended afterwards, so
        every instruction is still instrumented)."""
        seen = set()
        order: List[int] = []

        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        # Iterative DFS computing postorder.
        post: List[int] = []
        while stack:
            pc, idx = stack[-1]
            succs = self.succs[pc]
            if idx < len(succs):
                stack[-1] = (pc, idx + 1)
                nxt = succs[idx]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                post.append(pc)
        order = list(reversed(post))
        for pc in self.pcs:
            if pc not in seen:
                order.append(pc)
        return order


def function_regions(program: Program) -> List[FunctionRegion]:
    """The program's declared function regions, plus synthesized regions
    covering any instructions outside every declared function (so that
    whole programs without ``.func`` markers are still compilable)."""
    regions = sorted(program.functions, key=lambda r: r.start)
    covered: List[FunctionRegion] = []
    cursor = 0
    counter = 0
    for region in regions:
        if region.start > cursor:
            covered.append(
                FunctionRegion(f"__toplevel{counter}__", cursor,
                               region.start))
            counter += 1
        covered.append(region)
        cursor = max(cursor, region.end)
    if cursor < len(program):
        covered.append(
            FunctionRegion(f"__toplevel{counter}__", cursor, len(program)))
    return covered
