"""repro.protcc — the ProtCC compiler (paper SV): per-function
instrumentation passes that automatically program ProtISA ProtSets for
the four vulnerable code classes, plus a multi-class driver and the
software Spectre mitigation pass family (fence/SLH/mask/blade)."""

from .cfg import FunctionGraph, function_regions
from .rewriter import Rewriter, RewriteResult, identity_move
from .driver import CompiledProgram, compile_program
from .mitigations import (
    MITIGATIONS,
    SECURE_MITIGATIONS,
    MitigatedProgram,
    MitigationError,
    mitigate_blade,
    mitigate_fence,
    mitigate_mask,
    mitigate_program,
    mitigate_slh,
)
from .passes import (
    CLASSES,
    apply_arch,
    apply_ct,
    apply_cts,
    apply_rand,
    apply_unr,
)

__all__ = [
    "FunctionGraph", "function_regions",
    "Rewriter", "RewriteResult", "identity_move",
    "CompiledProgram", "compile_program",
    "CLASSES", "apply_arch", "apply_ct", "apply_cts", "apply_rand",
    "apply_unr",
    "MITIGATIONS", "SECURE_MITIGATIONS", "MitigatedProgram",
    "MitigationError",
    "mitigate_program", "mitigate_fence", "mitigate_slh",
    "mitigate_mask", "mitigate_blade",
]
