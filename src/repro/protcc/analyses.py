"""Register-level dataflow analyses backing the ProtCC passes (SV-A).

All analyses are intraprocedural over a :class:`FunctionGraph`, with
conservative call-boundary assumptions (caller-saved registers are
clobbered by CALL; callees preserve the rest).  Register sets are int
bitmasks over the 17 architectural registers; reaching definitions use
bitmasks over function-local definition ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instruction import Instruction
from ..isa.operations import DIV_OPS, FLAG_WRITERS, IMM_ALU_OPS, Op, REG_ALU_OPS
from ..isa.registers import FLAGS, NUM_REGS, SP
from .cfg import FunctionGraph

ALL_REGS_MASK = (1 << NUM_REGS) - 1

#: Calling convention: arguments and return value.
ARG_REGS = (0, 1, 2, 3)
RETVAL_REG = 0

#: Registers a CALL may clobber (callees preserve the rest).
CALLER_SAVED = tuple(range(0, 8)) + (FLAGS,)
CALLER_SAVED_MASK = sum(1 << r for r in CALLER_SAVED)

SP_MASK = 1 << SP

#: Ops whose output is a pure function of their register sources (the
#: "derived" rule: known inputs yield a known output).
_DERIVED_OPS = (frozenset({Op.MOV}) | REG_ALU_OPS | IMM_ALU_OPS
                | FLAG_WRITERS | DIV_OPS)

#: Single-source invertible ops for bound-to-leak back-propagation.
_INVERTIBLE_OPS = frozenset({Op.MOV, Op.ADDI, Op.SUBI, Op.XORI})


def regs_mask(regs: Sequence[int]) -> int:
    mask = 0
    for reg in regs:
        mask |= 1 << reg
    return mask


def full_transmit_regs(inst: Instruction) -> Tuple[int, ...]:
    """Register operands *fully* transmitted by this instruction: memory
    address registers, a conditional branch's flags, an indirect jump's
    target.  Division inputs transmit only partially and are excluded
    (paper SIX-B2)."""
    return inst.addr_regs() + inst.transmit_regs_at_resolve()


def cts_sensitive_regs(inst: Instruction, div_transmits: bool = True
                       ) -> Tuple[int, ...]:
    """Register operands the secrecy-typing rules require to be public:
    all transmitter-sensitive operands, including division's."""
    regs = full_transmit_regs(inst)
    if inst.is_div and div_transmits:
        regs = regs + (inst.ra, inst.rb)
    return regs


def _dests_mask(inst: Instruction) -> int:
    return regs_mask(inst.dest_regs())


# ======================================================================
# Generic must-analysis solver (bitmask lattice, meet = intersection)
# ======================================================================

def _solve_forward(graph: FunctionGraph, transfer, entry_value: int
                   ) -> Dict[int, int]:
    """Forward must-analysis; returns IN sets per pc."""
    in_sets = {pc: ALL_REGS_MASK for pc in graph.pcs}
    in_sets[graph.entry] = entry_value
    order = graph.reverse_postorder()
    changed = True
    while changed:
        changed = False
        for pc in order:
            preds = graph.preds[pc]
            if preds:
                value = ALL_REGS_MASK
                for pred in preds:
                    value &= transfer(pred, in_sets[pred])
                if pc == graph.entry:
                    value &= entry_value
                if value != in_sets[pc]:
                    in_sets[pc] = value
                    changed = True
    return in_sets


# ======================================================================
# Past-leaked (ProtCC-CT, forward)
# ======================================================================

def past_leaked_transfer(inst: Instruction, state: int) -> int:
    """One instruction's effect on the past-leaked set: registers whose
    current value has already been fully transmitted or is constant."""
    state |= regs_mask(full_transmit_regs(inst))
    op = inst.op
    dests = _dests_mask(inst)
    if op is Op.MOVI:
        state |= dests
    elif op in _DERIVED_OPS:
        srcs = regs_mask(inst.src_regs())
        if srcs & ~state:
            state &= ~dests
        else:
            state |= dests
    elif op in (Op.PUSH, Op.RET):
        pass  # SP := SP +/- 8, derived from SP which was just transmitted
    elif op is Op.CALL:
        state &= ~CALLER_SAVED_MASK
    elif op is Op.POP:
        state &= ~(dests & ~SP_MASK)  # the loaded value is unknown
    else:
        state &= ~dests  # loads: memory contents are not "leaked"
    return state


def past_leaked(graph: FunctionGraph, entry_extra: int = 0
                ) -> Dict[int, int]:
    """IN sets: registers past-leaked on every path reaching each pc.
    At entry only the stack pointer (plus any user-annotated public
    registers, paper SV-C) is assumed already-transmitted."""
    def transfer(pc: int, in_set: int) -> int:
        return past_leaked_transfer(graph.instruction(pc), in_set)

    return _solve_forward(graph, transfer, SP_MASK | entry_extra)


def past_leaked_after(graph: FunctionGraph, in_sets: Dict[int, int],
                      pc: int) -> int:
    return past_leaked_transfer(graph.instruction(pc), in_sets[pc])


# ======================================================================
# Bound-to-leak (ProtCC-CT, backward)
# ======================================================================

def bound_to_leak_transfer(inst: Instruction, out_set: int) -> int:
    """IN = effect of executing ``inst`` before ``out_set`` holds."""
    state = out_set
    dests = _dests_mask(inst)
    if inst.op is Op.CALL:
        dests |= CALLER_SAVED_MASK
    state &= ~dests
    if inst.op in _INVERTIBLE_OPS and (out_set >> inst.rd) & 1:
        # The (invertible image of the) source is bound to leak too.
        state |= 1 << inst.ra
    state |= regs_mask(full_transmit_regs(inst))
    return state


def bound_to_leak(graph: FunctionGraph) -> Dict[int, int]:
    """IN sets: registers whose current value is fully transmitted along
    *all* forward paths.  Nothing is assumed to leak after the function
    returns (conservative)."""
    in_sets = {pc: ALL_REGS_MASK for pc in graph.pcs}
    order = list(reversed(graph.reverse_postorder()))
    changed = True
    while changed:
        changed = False
        for pc in order:
            succs = graph.succs[pc]
            if succs:
                out = ALL_REGS_MASK
                for succ in succs:
                    out &= in_sets[succ]
            else:
                out = 0
            new_in = bound_to_leak_transfer(graph.instruction(pc), out)
            if new_in != in_sets[pc]:
                in_sets[pc] = new_in
                changed = True
    return in_sets


def bound_to_leak_out(graph: FunctionGraph, in_sets: Dict[int, int],
                      pc: int) -> int:
    succs = graph.succs[pc]
    if not succs:
        return 0
    out = ALL_REGS_MASK
    for succ in succs:
        out &= in_sets[succ]
    return out


# ======================================================================
# Never-secret registers (ProtCC-UNR, forward)
# ======================================================================

def unprotectable_transfer(inst: Instruction, state: int) -> int:
    """Registers that provably never hold program secrets: the stack
    pointer, constants, and values computed solely from them (SV-A4)."""
    op = inst.op
    dests = _dests_mask(inst)
    if op is Op.MOVI:
        state |= dests
    elif op in _DERIVED_OPS:
        srcs = regs_mask(inst.src_regs())
        if srcs & ~state:
            state &= ~dests
        else:
            state |= dests
    elif op in (Op.PUSH, Op.RET):
        pass  # SP updates derive from SP
    elif op is Op.CALL:
        state &= ~CALLER_SAVED_MASK
    elif op is Op.POP:
        state &= ~(dests & ~SP_MASK)
    else:
        state &= ~dests
    return state


def unprotectable(graph: FunctionGraph, entry_extra: int = 0
                  ) -> Dict[int, int]:
    def transfer(pc: int, in_set: int) -> int:
        return unprotectable_transfer(graph.instruction(pc), in_set)

    return _solve_forward(graph, transfer, SP_MASK | entry_extra)


def unprotectable_after(graph: FunctionGraph, in_sets: Dict[int, int],
                        pc: int) -> int:
    return unprotectable_transfer(graph.instruction(pc), in_sets[pc])


# ======================================================================
# Transient taint (Blade-style source -> transmitter reachability)
# ======================================================================

def transient_taint_transfer(inst: Instruction, state: int) -> int:
    """One instruction's effect on the transient-taint set: registers
    whose value may have been produced (or derived from a value
    produced) by a load on the current path.  Those are exactly the
    values that can be *transient* — created by wrong-path execution
    and rolled back at squash — so a transmitter consuming one is a
    Blade cut point (PAPERS.md: Beyond Over-Protection).

    An MFENCE clears the whole set: the frontend stalls behind the
    fence until it executes non-speculatively, so every register value
    live after it is architectural ("stable" in Blade's terms)."""
    op = inst.op
    if op is Op.MFENCE:
        return 0
    dests = _dests_mask(inst)
    if op is Op.LOAD or op is Op.POP:
        # The loaded value is a taint source; POP's SP update derives
        # from SP and stays clean.
        state |= 1 << inst.rd
    elif op is Op.CALL:
        # The callee may leave loaded data in any caller-saved register.
        state |= CALLER_SAVED_MASK & ~SP_MASK
    elif op in _DERIVED_OPS:
        srcs = regs_mask(inst.src_regs())
        if srcs & state:
            state |= dests
        else:
            state &= ~dests
    elif op in (Op.PUSH, Op.RET):
        pass  # SP := SP +/- 8, derived from SP
    else:
        state &= ~dests  # MOVI, JMP, ...: constants and no-ops
    return state


def transient_taint(graph: FunctionGraph, entry_tainted: int = 0
                    ) -> Dict[int, int]:
    """IN sets of the forward *may*-analysis: registers possibly
    load-derived on some path reaching each pc.  ``entry_tainted`` seeds
    the function entry (callees must assume argument registers carry
    loaded data; the program entry starts clean)."""
    in_sets = {pc: 0 for pc in graph.pcs}
    in_sets[graph.entry] = entry_tainted
    order = graph.reverse_postorder()
    changed = True
    while changed:
        changed = False
        for pc in order:
            value = entry_tainted if pc == graph.entry else 0
            for pred in graph.preds[pc]:
                value |= transient_taint_transfer(
                    graph.instruction(pred), in_sets[pred])
            if value != in_sets[pc]:
                in_sets[pc] = value
                changed = True
    return in_sets


# ======================================================================
# Reaching definitions (ProtCC-CTS)
# ======================================================================

@dataclass(frozen=True)
class Definition:
    """One register definition site within a function."""

    def_id: int
    pc: Optional[int]       # None for function-entry pseudo-defs
    reg: int
    kind: str               # "inst" | "entry" | "call"


class ReachingDefinitions:
    """Classic GEN/KILL reaching definitions over one function."""

    def __init__(self, graph: FunctionGraph) -> None:
        self.graph = graph
        self.defs: List[Definition] = []
        self._defs_at: Dict[Optional[int], List[Definition]] = {}
        self._defs_of_reg = [0] * NUM_REGS

        def add(pc: Optional[int], reg: int, kind: str) -> Definition:
            definition = Definition(len(self.defs), pc, reg, kind)
            self.defs.append(definition)
            self._defs_at.setdefault(pc, []).append(definition)
            self._defs_of_reg[reg] |= 1 << definition.def_id
            return definition

        for reg in range(NUM_REGS):
            add(None, reg, "entry")
        for pc in graph.pcs:
            inst = graph.instruction(pc)
            for reg in inst.dest_regs():
                add(pc, reg, "inst")
            if inst.op is Op.CALL:
                for reg in CALLER_SAVED:
                    add(pc, reg, "call")

        self._gen: Dict[int, int] = {}
        self._kill: Dict[int, int] = {}
        for pc in graph.pcs:
            gen = 0
            kill = 0
            for definition in self._defs_at.get(pc, ()):
                gen |= 1 << definition.def_id
                kill |= self._defs_of_reg[definition.reg]
            self._gen[pc] = gen
            self._kill[pc] = kill & ~gen

        entry_mask = sum(1 << d.def_id for d in self._defs_at[None])
        self.in_sets: Dict[int, int] = {pc: 0 for pc in graph.pcs}
        self.in_sets[graph.entry] = entry_mask
        order = graph.reverse_postorder()
        changed = True
        while changed:
            changed = False
            for pc in order:
                value = entry_mask if pc == graph.entry else 0
                for pred in graph.preds[pc]:
                    value |= (self._gen[pred]
                              | (self.in_sets[pred] & ~self._kill[pred]))
                if value != self.in_sets[pc]:
                    self.in_sets[pc] = value
                    changed = True

    def reaching(self, pc: int, reg: int) -> List[Definition]:
        """Definitions of ``reg`` that may reach ``pc``."""
        mask = self.in_sets[pc] & self._defs_of_reg[reg]
        return [d for d in self.defs if (mask >> d.def_id) & 1]

    def defs_at(self, pc: Optional[int]) -> List[Definition]:
        return list(self._defs_at.get(pc, ()))

    def def_source_regs(self, definition: Definition) -> Tuple[int, ...]:
        """Register sources a definition's *value* derives from (used by
        the secrecy-typing closure: a public output needs public
        inputs).  Loads, entry defs, and call clobbers are opaque."""
        if definition.kind != "inst":
            return ()
        inst = self.graph.instruction(definition.pc)
        op = inst.op
        if op in _DERIVED_OPS:
            return inst.src_regs()
        if op in (Op.PUSH, Op.POP, Op.CALL, Op.RET) and definition.reg == SP:
            return (SP,)
        return ()
