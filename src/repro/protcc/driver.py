"""ProtCC compilation driver (paper SV-A, SVIII-B3).

Multi-class programs are compiled by assigning each function region a
vulnerable-code class, exactly as the paper does for nginx (main
executable: ARCH; OpenSSL: UNR except its hottest ARCH/CTS/CT
functions).  All per-function edits are registered against the original
program and applied in a single rebuild.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple, Union

from ..isa.program import Program
from .cfg import FunctionGraph, function_regions
from .passes import (
    CLASSES,
    apply_arch,
    apply_ct,
    apply_cts,
    apply_rand,
    apply_unr,
)
from .rewriter import Rewriter

ClassMap = Union[str, Dict[str, str]]


@dataclass
class CompiledProgram:
    """A ProtCC-instrumented binary plus observer metadata."""

    program: Program
    #: function name -> class it was compiled as
    classes: Dict[str, str]
    #: Final PCs whose output definitions are publicly typed (feeds the
    #: CTS-SEQ observer mode, paper SVII-B1c).
    public_def_pcs: Set[int] = field(default_factory=set)
    #: Static instrumentation metrics (paper SIX-A2).
    base_size: int = 0
    inserted_moves: int = 0
    prot_prefixes: int = 0

    @property
    def code_size(self) -> int:
        """Instruction count plus one byte-equivalent per PROT prefix
        (a prefix grows the encoding, not the instruction count)."""
        return len(self.program.instructions)

    @property
    def code_size_overhead(self) -> float:
        if self.base_size == 0:
            return 0.0
        extra = (len(self.program.instructions) - self.base_size
                 + 0.25 * self.prot_prefixes)
        return extra / self.base_size


def compile_program(
    program: Program,
    classes: ClassMap = "arch",
    default_class: str = "unr",
    rng: Optional[random.Random] = None,
    public_annotations: Optional[Dict[str, Tuple[int, ...]]] = None,
) -> CompiledProgram:
    """Instrument ``program`` with ProtCC.

    ``classes`` is either a single class applied to every function or a
    mapping from function name to class; unmapped functions get
    ``default_class`` (the guaranteed-secure choice, paper SV-B).

    ``public_annotations`` optionally maps a function name to registers
    the user asserts hold public data at its entry (the manual
    refinement hook of paper SV-C); the passes then declassify them
    instead of conservatively protecting them.
    """
    if not program.is_linked:
        program = program.linked()
    regions = function_regions(program)

    if isinstance(classes, str):
        class_of = {region.name: classes for region in regions}
    else:
        unknown = set(classes) - {region.name for region in regions}
        if unknown:
            raise ValueError(f"unknown functions in class map: {unknown}")
        class_of = {region.name: classes.get(region.name, default_class)
                    for region in regions}
    for name, cls in class_of.items():
        if cls not in CLASSES:
            raise ValueError(f"unknown class {cls!r} for {name!r}")

    annotations = public_annotations or {}
    unknown_notes = set(annotations) - {r.name for r in regions}
    if unknown_notes:
        raise ValueError(
            f"annotations for unknown functions: {unknown_notes}")

    rewriter = Rewriter(program)
    results = {}
    for region in regions:
        graph = FunctionGraph(program, region)
        cls = class_of[region.name]
        hints = tuple(annotations.get(region.name, ()))
        if cls == "arch":
            results[region.name] = apply_arch(rewriter, graph)
        elif cls == "cts":
            results[region.name] = apply_cts(rewriter, graph,
                                             entry_public=hints)
        elif cls == "ct":
            results[region.name] = apply_ct(rewriter, graph,
                                            entry_public=hints)
        elif cls == "unr":
            results[region.name] = apply_unr(rewriter, graph,
                                             entry_public=hints)
        else:
            results[region.name] = apply_rand(rewriter, graph, rng)

    built = rewriter.build()
    compiled = CompiledProgram(
        program=built.program,
        classes=class_of,
        base_size=len(program.instructions),
        inserted_moves=(len(built.program.instructions)
                        - len(program.instructions)),
        prot_prefixes=built.program.prot_count(),
    )

    # CTS observer metadata: publicly-typed definitions are exactly the
    # unprefixed definitions inside CTS-compiled regions (the pass
    # prefixes every secret definition), plus inserted identity moves.
    for region in regions:
        if class_of[region.name] != "cts":
            continue
        start = built.point_pos[region.start]
        end = built.point_pos.get(region.end,
                                  len(built.program.instructions))
        for pc in range(start, end):
            inst = built.program[pc]
            if inst.dest_regs() and not inst.prot:
                compiled.public_def_pcs.add(pc)
    return compiled
