#!/usr/bin/env python3
"""Quickstart: assemble a program, run it on the out-of-order core,
compile it with ProtCC, and compare Spectre defenses.

    python examples/quickstart.py
"""

from repro.arch import Memory, run_program
from repro.defenses import ProtDelay, ProtTrack, SPTSB, AccessTrack, Unsafe
from repro.isa import assemble
from repro.protcc import compile_program
from repro.uarch import P_CORE, simulate

# A toy constant-time MAC: the key is secret, the message is public.
SOURCE = """
main:
    movi r8, 0x1000      ; message buffer
    movi r9, 0x2000      ; key
    movi r11, 0x3000     ; output
    call mac
    halt
.func mac
mac:
    load r1, [r9]        ; key word (secret)
    movi r3, 0
    movi r7, 0
loop:
    load r4, [r8 + r7]   ; message word (public)
    add r3, r3, r4
    mul r3, r3, r1
    andi r3, r3, 0xFFFFFFFF
    addi r7, r7, 8
    cmpi r7, 128
    blt loop
    store [r11], r3      ; publish the tag
    ret
.endfunc
"""


def main() -> None:
    program = assemble(SOURCE).linked()
    memory = Memory()
    for i in range(16):
        memory.write_word(0x1000 + 8 * i, 1000 + i)
    memory.write_word(0x2000, 0x5EC2E7)

    # 1. Functional reference run.
    seq = run_program(program, memory)
    print(f"sequential: {seq.instruction_count} instructions, "
          f"tag = {seq.memory.read_word(0x3000):#x}")

    # 2. Cycle-level baseline.
    base = simulate(program, Unsafe(), P_CORE, memory)
    print(f"unsafe core: {base.cycles} cycles (IPC {base.ipc:.2f})")

    # 3. ProtCC-CTS instrumentation: this kernel is static constant-time.
    compiled = compile_program(program, {"mac": "cts"},
                               default_class="arch")
    print(f"\nProtCC-CTS inserted {compiled.prot_prefixes} PROT prefixes "
          f"and {compiled.inserted_moves} identity moves:")
    from repro.isa import format_instruction

    mac = compiled.program.function_named("mac")
    for pc in range(mac.start, min(mac.start + 10, mac.end)):
        print(f"    {format_instruction(compiled.program[pc])}")

    # 4. Defense comparison, normalized to the unsafe baseline.
    print(f"\n{'defense':<16} {'binary':<8} cycles  norm")
    for label, defense, prog in [
            ("STT", AccessTrack(), program),
            ("SPT-SB", SPTSB(), program),
            ("Protean-Delay", ProtDelay(), compiled.program),
            ("Protean-Track", ProtTrack(), compiled.program)]:
        result = simulate(prog, defense, P_CORE, memory)
        kind = "base" if prog is program else "protcc"
        print(f"{label:<16} {kind:<8} {result.cycles:6d}  "
              f"{result.cycles / base.cycles:.3f}")


if __name__ == "__main__":
    main()
