#!/usr/bin/env python3
"""Securing a multi-class HTTPS-server workload (paper Fig. 1, SIX-C).

The nginx-like workload mixes all four vulnerable-code classes.  Only
SPT-SB can fully secure the uninstrumented binary — at the price of
treating everything as unrestricted.  ProtCC compiles each component
with its own class, letting Protean target its protections.

    python examples/multiclass_server.py
"""

from repro.bench import norm_runtime, protean_norm
from repro.protcc import compile_program
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("nginx.c2r2")
    print("component class map (paper SVIII-B3):")
    for function, clazz in sorted(workload.classes.items()):
        print(f"  {function:<16} -> ProtCC-{clazz.upper()}")

    compiled = compile_program(workload.program, workload.classes)
    total = len(compiled.program.instructions)
    print(f"\ninstrumentation: {compiled.prot_prefixes}/{total} "
          f"instructions PROT-prefixed, {compiled.inserted_moves} "
          f"identity moves inserted")

    print(f"\n{'configuration':<28} norm. runtime   overhead")
    rows = [
        ("SPT-SB (only prior option)", norm_runtime("nginx.c2r2", "spt-sb")),
        ("Protean-Delay (multi-class)", protean_norm("nginx.c2r2", "delay")),
        ("Protean-Track (multi-class)", protean_norm("nginx.c2r2", "track")),
    ]
    for label, value in rows:
        print(f"{label:<28} {value:>10.3f}   {100 * (value - 1):+7.1f}%")

    sptsb = rows[0][1] - 1
    track = rows[2][1] - 1
    print(f"\nProtean-Track carries {track / sptsb:.2f}x of SPT-SB's "
          f"overhead on this server\n(the paper reports 0.18x across its "
          f"nginx configurations).")


if __name__ == "__main__":
    main()
