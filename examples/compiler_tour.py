#!/usr/bin/env python3
"""A tour of the four ProtCC passes on the paper's Fig. 3 example.

Shows how each vulnerable-code class gets a differently-programmed
ProtSet for the same function: ARCH leaves it untouched, CTS types
secrets statically, CT declassifies bound-to-leak data on control-flow
edges, and UNR protects everything that could ever hold program data.

    python examples/compiler_tour.py
"""

from repro.isa import assemble, format_instruction
from repro.protcc import compile_program

# Fig. 3a: int foo(int *p) { x = *p; y = 0; if (x >= 0) y = A[x]; }
SOURCE = """
main:
    movi r0, 0x3000      ; p
    movi r3, 0x4000      ; A
    call foo
    halt
.func foo
foo:
    load r1, [r0]        ; x = *p
    movi r2, 0           ; y = 0
    cmpi r1, 0
    blt skip
    load r2, [r3 + r1]   ; y = A[x]
skip:
    ret
.endfunc
"""

NOTES = {
    "arch": "no-op: unprefixed code already unprotects what it accesses",
    "cts": "typing forces x public (it reaches a load address); "
           "y = A[x] stays secret; arguments declassified at entry",
    "ct": "x is declassified on the edge where it becomes bound to "
          "leak; constants are past-leaked",
    "unr": "only the constant zero and stack-pointer derivations are "
           "safe to unprotect",
}


def main() -> None:
    program = assemble(SOURCE).linked()
    for clazz in ("arch", "cts", "ct", "unr"):
        compiled = compile_program(program, {"foo": clazz},
                                   default_class="arch")
        region = compiled.program.function_named("foo")
        print(f"--- ProtCC-{clazz.upper()}: {NOTES[clazz]}")
        for pc in range(region.start, region.end):
            print(f"    {format_instruction(compiled.program[pc])}")
        print(f"    ({compiled.prot_prefixes} PROT prefixes, "
              f"{compiled.inserted_moves} inserted moves)\n")


if __name__ == "__main__":
    main()
