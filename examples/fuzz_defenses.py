#!/usr/bin/env python3
"""A miniature AMuLeT* campaign (paper SVII-B): fuzz the unsafe core
and Protean against the UNPROT-SEQ contract on randomly PROT-prefixed
binaries, under both adversary models.

    python examples/fuzz_defenses.py
"""

from repro.contracts import Contract
from repro.defenses import ProtDelay, ProtTrack, Unsafe
from repro.fuzzing import CampaignConfig, run_campaign


def main() -> None:
    print("fuzzing UNPROT-SEQ on ProtCC-RAND binaries "
          "(cache/TLB + timing adversaries)\n")
    print(f"{'hardware':<16} {'violations':>10} {'false pos':>10} "
          f"{'tests':>6}")
    for label, factory in (("Unsafe", Unsafe),
                           ("ProtDelay", ProtDelay),
                           ("ProtTrack", ProtTrack)):
        config = CampaignConfig(
            defense_factory=factory,
            contract=Contract.UNPROT_SEQ,
            instrumentation="rand",
            n_programs=5,
            pairs_per_program=3,
            seed=2026,
        )
        result = run_campaign(config)
        print(f"{label:<16} {result.violations:>10} "
              f"{result.false_positives:>10} {result.tests:>6}")
        if label == "Unsafe" and result.violation_sites:
            seed, pair, adversary = result.violation_sites[0]
            print(f"{'':<16} first hit: program seed {seed}, pair {pair}, "
                  f"{adversary} adversary")
    print("\nThe unsafe core leaks transiently-read secrets; "
          "Protean shows zero violations.")


if __name__ == "__main__":
    main()
