#!/usr/bin/env python3
"""A complete Spectre v1 attack: recover a secret string byte-by-byte
through the cache side channel on the unsafe core, then watch Protean
shut it down.

    python examples/spectre_attack.py
"""

from repro.arch import Memory
from repro.defenses import ProtTrack, Unsafe
from repro.isa import assemble
from repro.uarch import Core, P_CORE

ARRAY_BASE = 0x1000       # bounds-checked array (64 words)
SECRET_ADDR = 0x1000 + 800  # the secret lives past the array
PROBE_BASE = 0x80000      # attacker's probe array
SECRET = b"PROTEAN!"

# The victim gadget bounds-checks r0 before indexing, but the check's
# operand comes from a cold pointer chase, so the branch resolves long
# after the dependent loads have transiently executed.
VICTIM = """
main:
    movi r1, {array}
    movi r2, {probe}
    movi r6, 0
init:
    store [r1 + r6], r6
    addi r6, r6, 8
    cmpi r6, 512
    blt init
    load r10, [r1 + 768]    ; pull the secret's line into the cache
    movi r7, 0
    movi r9, 0x20000
train:
    movi r0, 0              ; in-bounds: trains the branch predictor
    call gadget
    addi r9, r9, 0x4000
    addi r7, r7, 1
    cmpi r7, 6
    blt train
    movi r0, {oob}          ; out-of-bounds: the secret byte's offset
    call gadget
    halt
.func gadget
gadget:
    load r8, [r9]           ; cold chase: delays the bounds check
    load r8, [r9 + r8 + 64]
    addi r8, r8, 512
    cmp r0, r8
    bge skip                ; the bounds check
    load r3, [r1 + r0]      ; transient out-of-bounds read
    andi r3, r3, 0xFF
    shli r3, r3, 9          ; one probe line per byte value
    load r4, [r2 + r3]      ; transmit via the cache
skip:
    ret
.endfunc
"""


def run_victim(defense, byte_index: int):
    source = VICTIM.format(array=ARRAY_BASE, probe=PROBE_BASE,
                           oob=SECRET_ADDR - ARRAY_BASE + byte_index)
    memory = Memory()
    for offset, value in enumerate(SECRET):
        memory.write_byte(SECRET_ADDR + offset, value)
    core = Core(assemble(source).linked(), defense, P_CORE, memory)
    result = core.run()
    assert result.halt_reason == "halt"
    return core


def probe_cache(core) -> list:
    """Prime-and-probe: which probe lines did the victim touch?"""
    hits = []
    for value in range(256):
        if core.caches.l1d.contains(PROBE_BASE + (value << 9)):
            hits.append(value)
    return hits


def recover(defense_factory, label: str) -> bytes:
    recovered = bytearray()
    for index in range(len(SECRET)):
        core = run_victim(defense_factory(), index)
        hits = [v for v in probe_cache(core) if v != 0]
        recovered.append(hits[0] if len(hits) == 1 else 0)
    print(f"{label:<24} recovered: {bytes(recovered)!r}")
    return bytes(recovered)


def main() -> None:
    print(f"secret in victim memory:  {SECRET!r}\n")
    leaked = recover(Unsafe, "unsafe out-of-order core")
    assert leaked == SECRET, "the attack should succeed on unsafe hardware"
    blocked = recover(ProtTrack, "Protean (ProtTrack)")
    assert SECRET not in blocked
    print("\nProtean blocked every byte: the transient out-of-bounds load "
          "reads protected\nmemory, so its dependents are never woken while "
          "speculative.")


if __name__ == "__main__":
    main()
