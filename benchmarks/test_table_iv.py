"""Tab. IV: geomean normalized runtime of all eight Protean
single-class configurations on SPEC2017-like (P- and E-core) and
PARSEC-like suites, against the class-targeting secure baselines.

Expected shapes: Protean-Track-ARCH well under STT; Protean under SPT
for CTS/CT; Protean-UNR under SPT-SB; E-core overheads below P-core
(shorter speculation windows, paper SIX-A5)."""

from conftest import emit

from repro.bench import geomean, table_iv
from repro.bench.runner import RunSpec
from repro.uarch.pipeline import simulate
from repro.workloads import get_workload
from repro.defenses import AccessTrack


def test_table_iv(benchmark, results_dir, quick_mode):
    cores = ("P",) if quick_mode else ("P", "E")
    table = table_iv(cores=cores, include_parsec=not quick_mode)
    emit(results_dir, "table_iv", table.render())

    for (clazz, suite), entry in table.data.items():
        assert entry["track"] <= entry["baseline"] * 1.02, (clazz, suite)
        assert entry["delay"] <= entry["baseline"] * 1.05, (clazz, suite)

    if not quick_mode:
        # E-core speculation windows are shorter: lower defense overheads.
        for clazz in ("arch", "unr"):
            p_core = table.data[(clazz, "SPEC2017 P-core")]
            e_core = table.data[(clazz, "SPEC2017 E-core")]
            assert e_core["baseline"] <= p_core["baseline"] * 1.05

    workload = get_workload("mcf.s")
    benchmark.pedantic(
        lambda: simulate(workload.program, AccessTrack(),
                         RunSpec(workload="mcf.s").core_config(),
                         workload.memory, workload.regs),
        rounds=1, iterations=1)
