#!/usr/bin/env python
"""Wall-clock comparison of the serial vs parallel benchmark executor.

Runs the Fig. 5 quick matrix three ways — serial with a cold cache,
parallel with a cold cache, and parallel again with a warm cache — and
writes the timings to ``BENCH_executor.json`` so CI can track the
executor's perf trajectory across revisions.  The three runs must
render byte-identically; the warm run must perform zero simulations.

Usage::

    PYTHONPATH=src python benchmarks/bench_executor.py \
        [--jobs N] [--out BENCH_executor.json] [--full]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import clear_caches, figure_5, resolve_jobs  # noqa: E402
from repro.bench import executor  # noqa: E402
from repro.bench.tables import SPEC_INT_FAST  # noqa: E402
from repro.metrics import current_git_sha, host_fingerprint  # noqa: E402

#: Bumped whenever the payload layout changes, so trajectory tooling
#: can tell records from different revisions apart.
BENCH_SCHEMA = 1


def timed_run(jobs: int, cache_dir: pathlib.Path, kwargs: dict):
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    clear_caches()
    started = time.monotonic()
    table = figure_5(jobs=jobs, **kwargs)
    elapsed = time.monotonic() - started
    return elapsed, table, executor.LAST_BATCH


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default: cpu count)")
    parser.add_argument("--out", default=str(REPO_ROOT /
                                             "BENCH_executor.json"),
                        help="output path (default: BENCH_executor.json "
                             "at the repo root, whatever the cwd)")
    parser.add_argument("--full", action="store_true",
                        help="full Fig. 5 matrix instead of the quick one")
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    jobs = resolve_jobs(args.jobs)
    if args.jobs is None and jobs > cpu_count:
        # A default (cpu-count or REPRO_JOBS-derived) job count above
        # the actual core count only measures oversubscription noise;
        # an *explicit* --jobs N is honored as given.
        jobs = cpu_count
    kwargs = {} if args.full else dict(entry_sweep=(2, 1024, "inf"),
                                       names=SPEC_INT_FAST[:3])

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        tmp = pathlib.Path(tmp)
        serial_s, serial_table, serial_stats = timed_run(
            1, tmp / "serial", kwargs)
        parallel_s, parallel_table, parallel_stats = timed_run(
            jobs, tmp / "parallel", kwargs)
        warm_s, warm_table, warm_stats = timed_run(
            jobs, tmp / "parallel", kwargs)

    if serial_table.render() != parallel_table.render() \
            or warm_table.render() != serial_table.render():
        print("FATAL: parallel/warm output differs from serial",
              file=sys.stderr)
        return 1
    if warm_stats.simulated != 0:
        print(f"FATAL: warm-cache run simulated {warm_stats.simulated} "
              f"specs (expected 0)", file=sys.stderr)
        return 1

    payload = {
        "schema": BENCH_SCHEMA,
        "benchmark": "figure_5" + ("" if args.full else " (quick)"),
        "git_sha": current_git_sha(),
        "host": host_fingerprint(),
        "specs": serial_stats.total,
        "cpu_count": cpu_count,
        "jobs": jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "warm_s": round(warm_s, 3),
        "warm_simulated": warm_stats.simulated,
        "serial_simulated": serial_stats.simulated,
        "parallel_simulated": parallel_stats.simulated,
    }
    if jobs <= 1 or cpu_count <= 1:
        payload["note"] = (
            f"jobs={jobs} on cpu_count={cpu_count}: the parallel run "
            "cannot beat serial on this host, so 'speedup' measures "
            "pool overhead, not parallelism")
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
