"""SIX-A7: the squash-notification security fix costs little
performance (the paper reports +1.5%/+11.4%/+1.6% for STT/SPT/SPT-SB,
before SPT's separate performance fix)."""

from conftest import emit

from repro.bench import bugfix_overhead


def test_bugfix_overhead(benchmark, results_dir):
    table = benchmark.pedantic(bugfix_overhead, rounds=1, iterations=1)
    emit(results_dir, "ablation_bugfix_overhead", table.render())

    for defense, entry in table.data.items():
        delta = entry["fixed"] - entry["buggy"]
        assert abs(delta) < 0.25, (defense, delta)
