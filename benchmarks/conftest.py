"""Shared fixtures for the paper-reproduction benchmark suite.

Each ``test_table_*.py`` / ``test_figure_*.py`` file regenerates one
results table or figure from the paper, prints it, saves it under
``benchmarks/results/``, and asserts the paper's qualitative claims.
Set ``REPRO_QUICK=1`` to run reduced-size variants.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def quick_mode() -> bool:
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered table and persist it for the paper comparison."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
