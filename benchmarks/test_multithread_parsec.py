"""Multi-threaded PARSEC-like runs on the hybrid multi-core substrate
(paper SVIII-A4): 4 threads over 2 P-cores + 2 E-cores, shared L3,
write-invalidation coherence.  The single-class story must survive
threading: Protean-UNR well under SPT-SB (SIX-A1)."""

from conftest import emit

from repro.bench import geomean, render_table
from repro.defenses import ProtDelay, ProtTrack, SPTSB, Unsafe
from repro.protcc import compile_program
from repro.uarch import simulate_mt
from repro.workloads import get_workload

MT = ("blackscholes.mt", "swaptions.mt", "canneal.mt")


def _norm(name, factory, instrument=None):
    w = get_workload(name)
    program = w.program if instrument is None else \
        compile_program(w.program, instrument).program
    base = simulate_mt(w.program, Unsafe, w.memory, threads=4, p_cores=2)
    this = simulate_mt(program, factory, w.memory, threads=4, p_cores=2)
    assert all(h == "halt" for h in this.halt_reasons)
    return this.cycles / base.cycles


def test_multithread_parsec(benchmark, results_dir):
    rows = []
    data = {}
    for name in MT:
        sptsb = _norm(name, SPTSB)
        delay = _norm(name, ProtDelay, "unr")
        track = _norm(name, ProtTrack, "unr")
        rows.append([name, sptsb, delay, track])
        data[name] = (sptsb, delay, track)
    rows.append(["geomean",
                 geomean(v[0] for v in data.values()),
                 geomean(v[1] for v in data.values()),
                 geomean(v[2] for v in data.values())])
    text = render_table(
        "Multi-threaded PARSEC (4 threads, 2P+2E, shared L3): "
        "SPT-SB vs Protean-UNR",
        ["benchmark", "SPT-SB", "Delay-UNR", "Track-UNR"], rows)
    emit(results_dir, "multithread_parsec", text)

    for name, (sptsb, delay, track) in data.items():
        assert track <= sptsb, name
        assert delay <= sptsb, name

    w = get_workload("blackscholes.mt")
    benchmark.pedantic(
        lambda: simulate_mt(w.program, SPTSB, w.memory, threads=4,
                            p_cores=2),
        rounds=1, iterations=1)
