"""Tab. I: the per-class overhead summary (derived from Tab. V, as in
the paper).  Protean targets every class at lower overhead than the
class's best prior defense."""

from conftest import emit

from repro.bench import table_i


def test_table_i(benchmark, results_dir):
    table = benchmark.pedantic(table_i, rounds=1, iterations=1)
    emit(results_dir, "table_i", table.render())

    for label, entry in table.data["classes"].items():
        assert entry["track"] <= entry["baseline"] + 1e-9, label
        assert entry["delay"] <= entry["baseline"] + 1e-9, label
