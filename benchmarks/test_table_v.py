"""Tab. V: single-class suites and multi-class nginx (paper SIX-B/C).

Expected shape: Protean (both mechanisms) beats the most performant
applicable secure baseline on every suite geomean, with ProtTrack <=
ProtDelay, and the nginx gap large (the paper reports Protean at
roughly one-third to one-fifth of SPT-SB's overhead)."""

from conftest import emit

from repro.bench import table_v
from repro.bench.runner import RunSpec
from repro.uarch.pipeline import simulate
from repro.workloads import get_workload
from repro.defenses import SPTSB


def test_table_v(benchmark, results_dir):
    table = table_v()
    emit(results_dir, "table_v", table.render())

    for suite in ("arch-wasm", "cts-crypto", "ct-crypto", "unr-crypto",
                  "nginx"):
        entry = table.data[f"{suite}:geomean"]
        assert entry["delay"] <= entry["baseline"] + 1e-9, suite
        assert entry["track"] <= entry["delay"] * 1.05, suite

    nginx = table.data["nginx:geomean"]
    protean_overhead = nginx["track"] - 1.0
    baseline_overhead = nginx["baseline"] - 1.0
    assert protean_overhead < 0.5 * baseline_overhead

    workload = get_workload("nginx.c2r2")
    benchmark.pedantic(
        lambda: simulate(workload.program, SPTSB(),
                         RunSpec(workload="nginx.c2r2").core_config(),
                         workload.memory, workload.regs),
        rounds=1, iterations=1)
