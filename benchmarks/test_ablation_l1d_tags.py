"""SIX-A3: the protection-tagged L1D is critical; a perfect shadow
memory helps only marginally beyond it."""

from conftest import emit

from repro.bench import l1d_tag_variants


def test_l1d_tag_variants(benchmark, results_dir):
    table = benchmark.pedantic(l1d_tag_variants, rounds=1, iterations=1)
    emit(results_dir, "ablation_l1d_tags", table.render())

    for clazz, entry in table.data.items():
        assert entry["none"] >= entry["l1d"] - 1e-9, clazz
        assert entry["l1d"] >= entry["perfect"] - 1e-9, clazz
    # Disabling memory tags must hurt measurably somewhere.
    assert any(e["none"] > e["l1d"] + 0.01 for e in table.data.values())
