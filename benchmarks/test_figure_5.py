"""Fig. 5: ProtTrack access-predictor sensitivity.  A 1024-entry
predictor should land within a small margin of an infinitely-sized
one, in both misprediction rate and runtime overhead (the paper reports
within 0.6% / 0.2%)."""

from conftest import emit

from repro.bench import figure_5
from repro.bench.tables import SPEC_INT_FAST


def test_figure_5(benchmark, results_dir, quick_mode):
    sweep = (2, 1024, "inf") if quick_mode \
        else (2, 4, 16, 256, 1024, "inf")
    names = SPEC_INT_FAST[:3] if quick_mode else SPEC_INT_FAST
    figure = benchmark.pedantic(figure_5, args=(sweep, names),
                                rounds=1, iterations=1)
    emit(results_dir, "figure_5", figure.render())

    chosen = figure.data[1024]
    infinite = figure.data["inf"]
    assert abs(chosen["mispredict_rate"]
               - infinite["mispredict_rate"]) < 0.02
    assert abs(chosen["overhead"] - infinite["overhead"]) < 0.02
    # Tiny predictors alias and should mispredict at least as often.
    smallest = figure.data[sweep[0]]
    assert smallest["mispredict_rate"] >= infinite["mispredict_rate"] - 1e-9
