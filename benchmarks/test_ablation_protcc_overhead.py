"""SIX-A2: ProtCC instrumentation overhead with protections disabled.
The paper reports single-digit-to-20% code size and <6% runtime
overheads; ProtCC-CT inserts the most identity moves."""

from conftest import emit

from repro.bench import protcc_overhead


def test_protcc_overhead(benchmark, results_dir):
    table = benchmark.pedantic(protcc_overhead, rounds=1, iterations=1)
    emit(results_dir, "ablation_protcc_overhead", table.render())

    for clazz, entry in table.data.items():
        assert entry["runtime"] < 1.25, clazz
        assert entry["code_size"] < 1.6, clazz
    # CT inserts identity moves on edges: largest code growth.
    assert table.data["ct"]["code_size"] >= table.data["unr"]["code_size"]
