"""SIX-A4: raw AccessDelay/AccessTrack applied directly to ProtISA
ProtSets (no selective wakeup, no access predictor) are slower than
ProtDelay/ProtTrack."""

from conftest import emit

from repro.bench import access_mechanisms


def test_access_mechanisms(benchmark, results_dir):
    table = benchmark.pedantic(access_mechanisms, rounds=1, iterations=1)
    emit(results_dir, "ablation_access_mechanisms", table.render())

    for clazz, entry in table.data.items():
        assert entry["AccessDelay"] >= entry["ProtDelay"] - 1e-9, clazz
        assert entry["AccessTrack"] >= entry["ProtTrack"] - 1e-9, clazz
    # The optimizations must matter somewhere.
    assert any(e["AccessTrack"] > e["ProtTrack"] + 0.01
               or e["AccessDelay"] > e["ProtDelay"] + 0.01
               for e in table.data.values())
