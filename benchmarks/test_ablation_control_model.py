"""SIX-A6: the noncomprehensive CONTROL speculation model shortens
speculation windows, lowering every defense's overhead relative to
ATCOMMIT."""

from conftest import emit

from repro.bench import control_model


def test_control_model(benchmark, results_dir):
    table = benchmark.pedantic(control_model, rounds=1, iterations=1)
    emit(results_dir, "ablation_control_model", table.render())

    for label, entry in table.data.items():
        assert entry["control"] <= entry["atcommit"] + 0.02, label
