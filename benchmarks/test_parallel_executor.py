"""Parallel executor equivalence on real paper tables.

Serial and parallel runs of the same table/figure must render
byte-identically, and a warm-cache rerun must perform zero simulations
(the acceptance bar for the persistent result cache).  Runs the
reduced matrices under ``REPRO_QUICK=1``; the full ones otherwise.
"""

from conftest import emit

from repro.bench import clear_caches, figure_5, table_iv
from repro.bench import executor
from repro.bench.tables import SPEC_INT_FAST


def _figure_5_kwargs(quick_mode):
    if quick_mode:
        return dict(entry_sweep=(2, 1024, "inf"), names=SPEC_INT_FAST[:3])
    return {}


def test_figure_5_parallel_vs_serial(monkeypatch, tmp_path, results_dir,
                                     quick_mode):
    kwargs = _figure_5_kwargs(quick_mode)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    clear_caches()
    serial = figure_5(jobs=1, **kwargs)
    serial_stats = executor.LAST_BATCH

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    clear_caches()
    parallel = figure_5(jobs=4, **kwargs)
    parallel_stats = executor.LAST_BATCH

    assert serial.render() == parallel.render()
    assert serial.data == parallel.data
    assert parallel_stats.simulated == serial_stats.simulated

    # A warm-cache rerun performs zero simulations.
    clear_caches()
    warm = figure_5(jobs=4, **kwargs)
    assert executor.LAST_BATCH.simulated == 0
    assert executor.LAST_BATCH.disk_hits == executor.LAST_BATCH.total
    assert warm.render() == serial.render()
    emit(results_dir, "parallel_executor_figure_5", warm.render())


def test_table_iv_parallel_and_warm_cache(monkeypatch, tmp_path,
                                          results_dir, quick_mode):
    cores = ("P",) if quick_mode else ("P", "E")
    kwargs = dict(cores=cores, include_parsec=not quick_mode)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_caches()
    parallel = table_iv(jobs=4, **kwargs)
    assert executor.LAST_BATCH.simulated > 0

    # Serial rerun against the same cache: byte-identical and free.
    clear_caches()
    serial = table_iv(jobs=1, **kwargs)
    assert executor.LAST_BATCH.simulated == 0
    assert serial.render() == parallel.render()
    emit(results_dir, "parallel_executor_table_iv", serial.render())
