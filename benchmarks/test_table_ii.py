"""Tab. II: AMuLeT*-style security-contract fuzzing.  The unsafe
baseline must violate every contract; Protean (both mechanisms) must
show zero true-positive violations."""

from conftest import emit

from repro.bench import table_ii


def test_table_ii(benchmark, results_dir, quick_mode):
    kwargs = dict(n_programs=3, pairs=2) if quick_mode \
        else dict(n_programs=6, pairs=3)
    table = benchmark.pedantic(table_ii, kwargs=kwargs,
                               rounds=1, iterations=1)
    emit(results_dir, "table_ii", table.render())

    unsafe_total = 0
    for (contract, instr, label), result in table.data.items():
        if label == "Unsafe":
            unsafe_total += result.violations
        else:
            assert result.violations == 0, (contract, instr, label)
    assert unsafe_total > 0
