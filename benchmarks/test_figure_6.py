"""Fig. 6: per-benchmark normalized runtimes of Protean-Track-ARCH/-CT
vs STT/SPT on the SPEC2017- and PARSEC-like suites."""

from conftest import emit

from repro.bench import SPEC, PARSEC, figure_6, geomean


def test_figure_6(benchmark, results_dir, quick_mode):
    names = SPEC[:4] if quick_mode else SPEC + PARSEC
    figure = benchmark.pedantic(figure_6, args=(names,),
                                rounds=1, iterations=1)
    emit(results_dir, "figure_6", figure.render())

    track_arch = geomean(e["track_arch"] for e in figure.data.values())
    stt = geomean(e["stt"] for e in figure.data.values())
    track_ct = geomean(e["track_ct"] for e in figure.data.values())
    spt = geomean(e["spt"] for e in figure.data.values())
    assert track_arch < stt * 1.01
    assert track_ct < spt * 1.01
